"""EXC — whole-program exception-flow rules.

DEC-003 checks each service handler's ``try`` discipline *locally*; this
family turns that into an end-to-end statement over the call graph: for
every entry point, the set of exception types that can escape must be
covered by the declared vocabulary.

Entry points and their vocabularies:

* ``repro.service`` handlers (``do_*`` / ``handle_*``) — may raise
  :class:`ServiceError` subclasses or ``DECODE_ERRORS`` members; the
  cluster infrastructure modules (``cluster`` / ``router`` /
  ``supervise``) additionally declare the transport family
  (``ConnectionError`` / ``OSError`` / ``TimeoutError``), since their
  handlers speak raw sockets to shard processes and their callers
  absorb exactly those.
* the ``repro.parallel`` public API — ``DECODE_ERRORS`` members plus the
  module's own error types (``ParallelJobError``,
  ``DeadlineExceededError``) and ``TypeError`` for contract violations.
* codec entry points (public ``compress*``/``decompress*`` in
  ``repro.core`` / ``repro.baselines``, same definition as OBS-001) —
  ``DECODE_ERRORS`` members plus ``TypeError``.

The analysis is a fixpoint over per-function *escape summaries*: the set
of exception types each function can let out, seeded from its explicit
``raise`` statements and widened through call edges, with ``try`` blocks
absorbing covered types (subclass-aware, through the project/builtin
boundary). It is **optimistic about code it cannot see**: calls into the
stdlib or numpy contribute nothing, so EXC proves that *declared* raises
are covered — it is not a substitute for runtime backstops (DEC-003
still requires them).

Raises whose type cannot be resolved statically (``raise type(e)(...)``,
re-raising a parameter) poison the summary with a ``<dynamic>`` marker
that only a broad ``except Exception`` absorbs. A dynamic escape at an
entry point is EXC-002 — an *unproven* edge, eligible for the committed
baseline file (see ``repro.analysis.baseline``), unlike EXC-001 findings
which must be fixed.
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectModel
from repro.analysis.registry import WholeProgramRule, dotted_name, register

#: Marker for a raise whose type the analysis cannot determine.
DYNAMIC = "<dynamic>"

#: Edge kinds that carry exception flow (refs/spawns do not: a function
#: handed to a thread or server raises on *that* stack, not the caller's).
FLOW_KINDS = ("call", "dynamic", "partial", "higher-order")

HANDLER_NAME = re.compile(r"^(do|handle)_\w+$")
CODEC_NAME = re.compile(r"^(compress|decompress)\w*$")

#: The declared vocabularies, resolved against the model at check time so
#: fixture trees can supply minimal stand-ins at the same module paths.
SERVICE_ERROR_CLASS = "repro.service.schemas.ServiceError"
DECODE_ERRORS_TUPLE = ("repro.encoding.container", "DECODE_ERRORS")
PARALLEL_MODULE = "repro.parallel"
PARALLEL_API = ("compress_chunked", "decompress_chunked",
                "compress_many", "decompress_many")
PARALLEL_EXTRA_VOCAB = ("TypeError", "TimeoutError")
CODEC_MODULE_PREFIXES = ("repro.core", "repro.baselines")
CODEC_EXTRA_VOCAB = ("TypeError",)
#: Cluster infrastructure handlers (router forwarding, supervisor
#: probes) additionally speak raw sockets to shard processes, so the
#: transport family is part of their declared contract — their callers
#: (the router's dispatch, the probe loop) absorb exactly these.
CLUSTER_MODULES = ("repro.service.cluster", "repro.service.router",
                   "repro.service.supervise")
CLUSTER_EXTRA_VOCAB = ("ConnectionError", "OSError", "TimeoutError")

_MAX_ROUNDS = 40


def _builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name.rpartition(".")[2], None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


class EscapeAnalyzer:
    """Fixpoint computation of per-function escaping-exception summaries.

    A summary maps type name (project qualname, bare builtin name, or
    ``DYNAMIC``) to a human-readable origin — the qualname of the function
    whose ``raise`` introduced it. Origins are qualnames, not line
    numbers, so baseline entries keyed on them survive unrelated edits.
    """

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.summaries: dict[str, dict[str, str]] = {
            q: {} for q in model.functions}
        self._edges_by_line: dict[str, dict[int, list[str]]] = {}
        for qual, fn in model.functions.items():
            lines: dict[int, list[str]] = {}
            for edge in fn.edges:
                if edge.kind in FLOW_KINDS:
                    lines.setdefault(edge.line, []).append(edge.callee)
            self._edges_by_line[qual] = lines

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qual, fn in self.model.functions.items():
                new = self._function_escapes(fn)
                if new.keys() != self.summaries[qual].keys():
                    self.summaries[qual] = new
                    changed = True
            if not changed:
                return

    # -- per-function analysis ---------------------------------------------

    def _function_escapes(self, fn: FunctionInfo) -> dict[str, str]:
        mod = self.model.modules[fn.module]
        local_exc = self._local_exception_assigns(fn, mod)
        if isinstance(fn.node, ast.Lambda):
            return self._expr_escapes(fn, fn.node.body)
        body = getattr(fn.node, "body", [])
        return self._block(fn, mod, body, local_exc, absorbed=None,
                           bound_name=None)

    def _local_exception_assigns(self, fn: FunctionInfo,
                                 mod: ModuleInfo) -> dict[str, str]:
        """``name -> type`` for ``x = SomeError(...)`` assigns in ``fn``."""
        out: dict[str, str] = {}
        for node in ast.walk(fn.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                name = dotted_name(node.value.func)
                if name is None:
                    continue
                typ = self._resolve_type(mod, name)
                if typ is not None:
                    out[node.targets[0].id] = typ
        return out

    def _block(self, fn, mod, stmts, local_exc,
               absorbed, bound_name) -> dict[str, str]:
        esc: dict[str, str] = {}
        for stmt in stmts:
            esc.update(self._stmt(fn, mod, stmt, local_exc,
                                  absorbed, bound_name))
        return esc

    def _stmt(self, fn, mod, stmt, local_exc,
              absorbed, bound_name) -> dict[str, str]:
        if isinstance(stmt, ast.Try):
            return self._try(fn, mod, stmt, local_exc, absorbed, bound_name)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return {}
        if isinstance(stmt, ast.Raise):
            esc = self._expr_escapes(fn, stmt)
            esc.update(self._raised(fn, mod, stmt, local_exc,
                                    absorbed, bound_name))
            return esc
        if isinstance(stmt, ast.If):
            esc = self._expr_escapes(fn, stmt.test)
            esc.update(self._block(fn, mod, stmt.body, local_exc,
                                   absorbed, bound_name))
            esc.update(self._block(fn, mod, stmt.orelse, local_exc,
                                   absorbed, bound_name))
            return esc
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            esc = self._expr_escapes(fn, stmt.iter)
            esc.update(self._block(fn, mod, stmt.body, local_exc,
                                   absorbed, bound_name))
            esc.update(self._block(fn, mod, stmt.orelse, local_exc,
                                   absorbed, bound_name))
            return esc
        if isinstance(stmt, ast.While):
            esc = self._expr_escapes(fn, stmt.test)
            esc.update(self._block(fn, mod, stmt.body, local_exc,
                                   absorbed, bound_name))
            esc.update(self._block(fn, mod, stmt.orelse, local_exc,
                                   absorbed, bound_name))
            return esc
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            esc = {}
            for item in stmt.items:
                esc.update(self._expr_escapes(fn, item.context_expr))
            esc.update(self._block(fn, mod, stmt.body, local_exc,
                                   absorbed, bound_name))
            return esc
        return self._expr_escapes(fn, stmt)

    def _try(self, fn, mod, stmt: ast.Try, local_exc,
             absorbed, bound_name) -> dict[str, str]:
        body = self._block(fn, mod, stmt.body, local_exc,
                           absorbed, bound_name)
        body.update(self._block(fn, mod, stmt.orelse, local_exc,
                                absorbed, bound_name))
        remaining = dict(body)
        out: dict[str, str] = {}
        for handler in stmt.handlers:
            caught = self._handler_types(mod, handler)
            hit = {t: o for t, o in remaining.items()
                   if self._absorbs(caught, t)}
            for t in hit:
                remaining.pop(t)
            out.update(self._block(
                fn, mod, handler.body, local_exc,
                absorbed=hit, bound_name=handler.name))
        out.update(remaining)
        out.update(self._block(fn, mod, stmt.finalbody, local_exc,
                               absorbed, bound_name))
        return out

    def _handler_types(self, mod: ModuleInfo,
                       handler: ast.ExceptHandler) -> list[str]:
        if handler.type is None:
            return ["BaseException"]
        return self._type_list(mod, handler.type)

    def _type_list(self, mod: ModuleInfo, expr: ast.expr,
                   _depth: int = 0) -> list[str]:
        """Flatten a handler type expression into resolved type names.

        Follows module-level tuple aliases (``except DECODE_ERRORS``)
        across modules; unresolvable entries become ``<unresolved>``,
        which absorbs nothing.
        """
        if _depth > 6:
            return ["<unresolved>"]
        if isinstance(expr, ast.Tuple):
            out: list[str] = []
            for elt in expr.elts:
                out.extend(self._type_list(mod, elt, _depth + 1))
            return out
        name = dotted_name(expr)
        if name is None:
            return ["<unresolved>"]
        typ = self._resolve_type(mod, name)
        if typ is not None:
            return [typ]
        alias = self._resolve_tuple_alias(mod, name)
        if alias is not None:
            amod, value = alias
            return self._type_list(amod, value, _depth + 1)
        return ["<unresolved>"]

    def _resolve_type(self, mod: ModuleInfo, name: str) -> str | None:
        qual = self.model.resolve_class(mod, name)
        if qual is not None:
            return qual
        if "." not in name and _builtin_exception(name):
            return name
        return None

    def _resolve_tuple_alias(
            self, mod: ModuleInfo,
            name: str) -> tuple[ModuleInfo, ast.expr] | None:
        """Find the Tuple expression behind a name like ``DECODE_ERRORS``."""
        head, _, rest = name.partition(".")
        if not rest and head in mod.assigns:
            return mod, mod.assigns[head]
        expanded = self.model.expand_name(mod, name)
        hit = self.model._split_module(expanded)
        if hit is None:
            return None
        amod, attr = hit
        if "." not in attr and attr in amod.assigns:
            return amod, amod.assigns[attr]
        return None

    def _absorbs(self, caught: list[str], raised: str) -> bool:
        for c in caught:
            if c == "<unresolved>":
                continue
            if raised == DYNAMIC:
                if c in ("BaseException", "Exception"):
                    return True
                continue
            if self.model.is_subtype(raised, c):
                return True
        return False

    def _raised(self, fn, mod, node: ast.Raise, local_exc,
                absorbed, bound_name) -> dict[str, str]:
        origin = fn.qualname
        if node.exc is None:                       # bare raise: re-raise
            if absorbed:
                return dict(absorbed)
            return {}
        exc = node.exc
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
            if name is not None:
                typ = self._resolve_type(mod, name)
                if typ is not None:
                    return {typ: origin}
                if self.model.resolve_function(mod, name) is not None:
                    # raising a factory's return value: unprovable
                    return {DYNAMIC: origin}
            return {DYNAMIC: origin}
        name = dotted_name(exc)
        if name is not None:
            if name == bound_name:                 # raise e  (as-bound)
                # re-raise exactly what the handler provably absorbed —
                # possibly nothing, matching the optimism about externals
                return dict(absorbed or {})
            if name in local_exc:                  # e = Err(...); raise e
                return {local_exc[name]: origin}
            typ = self._resolve_type(mod, name)
            if typ is not None:                    # raise ValueError
                return {typ: origin}
        return {DYNAMIC: origin}

    def _expr_escapes(self, fn: FunctionInfo,
                      node: ast.AST) -> dict[str, str]:
        """Escapes contributed by calls inside one expression/statement."""
        esc: dict[str, str] = {}
        lines = self._edges_by_line.get(fn.qualname, {})
        stack: list[ast.AST] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(cur, ast.Call):
                for callee in lines.get(cur.lineno, ()):
                    esc.update(self.summaries.get(callee, {}))
            stack.extend(ast.iter_child_nodes(cur))
        return esc


def get_escape_analyzer(model: ProjectModel) -> EscapeAnalyzer:
    """Build (or reuse) the fixpoint for this model — EXC-001/002 share it."""
    cached = getattr(model, "_escape_analyzer", None)
    if cached is None:
        cached = EscapeAnalyzer(model)
        cached.run()
        model._escape_analyzer = cached  # type: ignore[attr-defined]
    return cached


# --------------------------------------------------------------------------
# entry points and vocabularies


def _decode_errors(model: ProjectModel) -> list[str]:
    modname, attr = DECODE_ERRORS_TUPLE
    mod = model.modules.get(modname)
    if mod is None or attr not in mod.assigns:
        return []
    analyzer = get_escape_analyzer(model)
    return [t for t in analyzer._type_list(mod, mod.assigns[attr])
            if t != "<unresolved>"]


def _vocab_closure(model: ProjectModel, names: Iterable[str]) -> list[str]:
    return [n for n in names if n]


def iter_entry_points(model: ProjectModel):
    """Yield (FunctionInfo, vocabulary type names, vocabulary label)."""
    decode = _decode_errors(model)
    service_err = ([SERVICE_ERROR_CLASS]
                   if SERVICE_ERROR_CLASS in model.classes else [])
    for qual, fn in sorted(model.functions.items()):
        if fn.parent is not None or fn.cls is not None:
            continue
        in_service = (fn.module == "repro.service"
                      or fn.module.startswith("repro.service."))
        in_codec = any(fn.module == p or fn.module.startswith(p + ".")
                       for p in CODEC_MODULE_PREFIXES)
        if fn.module in CLUSTER_MODULES and HANDLER_NAME.match(fn.name):
            vocab = _vocab_closure(
                model, service_err + decode + list(CLUSTER_EXTRA_VOCAB))
            yield fn, vocab, "cluster transport vocabulary"
        elif in_service and HANDLER_NAME.match(fn.name):
            vocab = _vocab_closure(model, service_err + decode)
            yield fn, vocab, "ServiceError/DECODE_ERRORS vocabulary"
        elif fn.module == PARALLEL_MODULE and fn.name in PARALLEL_API:
            own_errors = [
                c for c in model.classes
                if model.classes[c].module == PARALLEL_MODULE
                and model.is_subtype(c, "Exception")]
            vocab = _vocab_closure(
                model, decode + own_errors + list(PARALLEL_EXTRA_VOCAB))
            yield fn, vocab, "parallel API error vocabulary"
        elif in_codec and CODEC_NAME.match(fn.name):
            vocab = _vocab_closure(model, decode + list(CODEC_EXTRA_VOCAB))
            yield fn, vocab, "DECODE_ERRORS vocabulary"


def _simple(type_name: str) -> str:
    return type_name.rpartition(".")[2]


@register
class ExceptionVocabularyCovered(WholeProgramRule):
    id = "EXC-001"
    family = "exception-flow"
    description = ("exception type escaping a service/codec entry point "
                   "outside the declared error vocabulary")
    rationale = ("clients and retry logic dispatch on the declared error "
                 "types; an undeclared escape turns into a 500 with no "
                 "reason slug and breaks the error-handling contract the "
                 "paper's robustness claims rest on")

    def check_program(self, model: ProjectModel) -> Iterable[Diagnostic]:
        analyzer = get_escape_analyzer(model)
        for fn, vocab, label in iter_entry_points(model):
            esc = analyzer.summaries.get(fn.qualname, {})
            for typ in sorted(esc):
                if typ == DYNAMIC:
                    continue
                if not any(model.is_subtype(typ, v) for v in vocab):
                    yield self.pdiag(
                        fn.relpath, fn.line,
                        f"{fn.qualname}: {_simple(typ)} can escape "
                        f"(raised in {esc[typ]}) but is not in the "
                        f"declared {label}")


@register
class ExceptionFlowProven(WholeProgramRule):
    id = "EXC-002"
    family = "exception-flow"
    description = ("dynamically-typed raise reaches an entry point: the "
                   "escape set cannot be proven statically")
    rationale = ("a `raise type(e)(...)` or re-raised unknown value makes "
                 "the whole-program proof vacuous for this entry point; "
                 "either type the raise or record the edge in the reviewed "
                 "baseline file with a justification")

    def check_program(self, model: ProjectModel) -> Iterable[Diagnostic]:
        analyzer = get_escape_analyzer(model)
        for fn, _vocab, label in iter_entry_points(model):
            esc = analyzer.summaries.get(fn.qualname, {})
            if DYNAMIC in esc:
                yield self.pdiag(
                    fn.relpath, fn.line,
                    f"{fn.qualname}: a dynamically-typed raise in "
                    f"{esc[DYNAMIC]} can escape this entry point, so "
                    f"coverage of the {label} cannot be proven")
