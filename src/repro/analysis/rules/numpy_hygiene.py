"""NPY — numpy hygiene rules.

Numeric-kernel footguns that have bitten this codebase's hot paths:
float-literal equality (error-bound comparisons that silently never
match), allocation without an explicit dtype (platform-dependent default
widths change the bitstream), and mutable default arguments.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ModuleContext, Rule, dotted_name, register

NUMERIC_PATHS = (
    "src/repro/core/**",
    "src/repro/encoding/**",
    "src/repro/prediction/**",
    "src/repro/quantization/**",
    "src/repro/baselines/**",
)

#: Hot paths where the array dtype is part of the wire format.
CODEC_HOT_PATHS = (
    "src/repro/encoding/**",
    "src/repro/core/codec.py",
    "src/repro/core/compressor.py",
)

ALLOC_CALLS = frozenset({
    "np.empty", "numpy.empty", "np.zeros", "numpy.zeros",
    "np.ones", "numpy.ones", "np.empty_like_buffer",
})


@register
class FloatLiteralEquality(Rule):
    id = "NPY-001"
    family = "numpy-hygiene"
    description = "== / != against a float literal in a numeric kernel"
    rationale = ("after lossy quantization, exact float comparisons are "
                 "either dead code or a latent bug; compare against integer "
                 "codes or use np.isclose/tolerance checks")
    default_paths = NUMERIC_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (node.left, comparator):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, float)):
                        yield self.diag(
                            ctx, node,
                            f"exact float comparison against {side.value!r}; "
                            "use a tolerance (np.isclose) or compare integer "
                            "quantization codes")
                        break


@register
class AllocWithoutDtype(Rule):
    id = "NPY-002"
    family = "numpy-hygiene"
    description = "np.empty/np.zeros/np.ones without an explicit dtype in a codec hot path"
    rationale = ("default float64 allocation silently widens intermediates; "
                 "in codec paths the dtype is part of the format contract and "
                 "doubles memory traffic when wrong")
    default_paths = CODEC_HOT_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in ALLOC_CALLS:
                continue
            has_kw = any(kw.arg == "dtype" for kw in node.keywords)
            has_positional = len(node.args) >= 2  # np.zeros(shape, dtype)
            if not has_kw and not has_positional:
                yield self.diag(ctx, node,
                                f"{name}() without an explicit dtype in a codec "
                                "hot path; spell out dtype= so the wire format "
                                "does not depend on numpy defaults")


@register
class MutableDefaultArg(Rule):
    id = "NPY-003"
    family = "numpy-hygiene"
    description = "mutable default argument"
    rationale = ("a shared default list/dict/set/array leaks state between "
                 "calls — poison for codecs that must be pure functions")
    default_paths = ("src/repro/**",)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if not bad and isinstance(default, ast.Call):
                    name = dotted_name(default.func)
                    bad = name in {"list", "dict", "set", "bytearray",
                                   "np.array", "numpy.array"}
                if bad:
                    yield self.diag(ctx, default,
                                    f"mutable default argument in {node.name}(); "
                                    "default to None and construct inside the body")
