"""RES — resource-lifecycle rules (whole-program pass).

The shm arena work in PR 6 and the service executors in PR 8 made leaked
OS resources the most expensive class of bug in this codebase: a leaked
``SharedMemory`` segment survives the process and eats ``/dev/shm`` until
reboot. This rule enforces the repo's ownership discipline for every
tracked acquisition assigned to a local name:

* released in a ``finally`` block (or the acquisition is a ``with`` item
  to begin with — those never reach this rule),
* **or** returned/yielded to the caller (ownership transfer up),
* **or** explicitly handed to another owner on a line annotated with
  ``# repro-lint: owns=<name>`` — e.g. appending a segment to an arena
  that releases it in its own ``close()``.

Tracked constructors: ``open``/``os.open``, ``shared_memory.SharedMemory``,
``TemporaryDirectory``/``NamedTemporaryFile``, thread/process pool
executors, and raw sockets. The check is per-function and syntactic — a
resource smuggled out through a container without a marker is still
flagged, which is the point: the marker documents the handoff for the
next reader, not just for the linter.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectModel
from repro.analysis.registry import WholeProgramRule, dotted_name, register

#: canonical (post-``expand_name``) constructors we track.
TRACKED_ACQUIRERS = {
    "open": "file handle",
    "os.open": "file descriptor",
    "os.fdopen": "file handle",
    "multiprocessing.shared_memory.SharedMemory": "shared-memory segment",
    "tempfile.TemporaryDirectory": "temporary directory",
    "tempfile.NamedTemporaryFile": "temporary file",
    "concurrent.futures.ThreadPoolExecutor": "thread pool",
    "concurrent.futures.ProcessPoolExecutor": "process pool",
    "socket.socket": "socket",
}

#: method names that count as releasing the resource in a ``finally``.
RELEASE_METHODS = frozenset({
    "close", "unlink", "shutdown", "cleanup", "terminate", "join",
    "release",
})

OWNS_RE = re.compile(r"#\s*repro-lint:\s*owns=([\w,\s]+)")


def _owns_markers(mod: ModuleInfo) -> dict[int, set[str]]:
    """``line -> names`` for every ``# repro-lint: owns=...`` comment."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(mod.source.splitlines(), start=1):
        m = OWNS_RE.search(line)
        if m:
            names = {n.strip() for n in m.group(1).split(",") if n.strip()}
            out[lineno] = names
    return out


def _own_nodes(fn_node: ast.AST):
    """Nodes of this function body, not descending into nested defs."""
    if isinstance(fn_node, ast.Lambda):
        stack: list[ast.AST] = [fn_node.body]
    else:
        stack = list(getattr(fn_node, "body", []))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            continue
        yield cur
        stack.extend(ast.iter_child_nodes(cur))


def _names_in(expr: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


@register
class ResourceReleasedOnAllPaths(WholeProgramRule):
    id = "RES-001"
    family = "resource-lifecycle"
    description = ("acquired resource (shm segment, file, tempdir, pool) "
                   "not released on all paths")
    rationale = ("a leaked SharedMemory segment outlives the process and "
                 "fills /dev/shm; a leaked executor strands worker "
                 "processes — release in try/finally or a with block, "
                 "return the handle, or annotate the handoff with "
                 "`# repro-lint: owns=<name>`")

    def check_program(self, model: ProjectModel) -> Iterable[Diagnostic]:
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            yield from self._check_function(model, fn)

    # -- per-function ------------------------------------------------------

    def _check_function(self, model: ProjectModel,
                        fn: FunctionInfo) -> Iterable[Diagnostic]:
        mod = model.modules[fn.module]
        acquisitions: list[tuple[str, ast.Call, str]] = []
        for node in _own_nodes(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            name = dotted_name(node.value.func)
            if name is None:
                continue
            canonical = model.expand_name(mod, name)
            if canonical in TRACKED_ACQUIRERS:
                acquisitions.append((node.targets[0].id, node.value,
                                     TRACKED_ACQUIRERS[canonical]))
        if not acquisitions:
            return
        markers = _owns_markers(mod)
        released = self._released_names(fn)
        transferred = self._transferred_names(fn)
        handed_off = self._marker_names(fn, markers)
        for var, call, kind in acquisitions:
            if var in released or var in transferred or var in handed_off:
                continue
            yield self.pdiag(
                fn.relpath, call.lineno,
                f"{fn.qualname}: local '{var}' acquires a {kind} that is "
                "not released on all paths; close it in a finally/with, "
                "return it to the caller, or annotate the handoff with "
                f"`# repro-lint: owns={var}`")

    def _released_names(self, fn: FunctionInfo) -> set[str]:
        """Names released inside some ``finally`` block or managed ``with``."""
        out: set[str] = set()
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Try):
                for sub in node.finalbody:
                    out |= self._release_calls(sub)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    # `with seg:` / `with closing(seg):` both manage `seg`
                    out |= _names_in(item.context_expr)
        return out

    def _release_calls(self, stmt: ast.stmt) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name and "." in name:
                recv, _, meth = name.rpartition(".")
                if meth in RELEASE_METHODS and "." not in recv:
                    out.add(recv)
            # os.close(fd), shutil.rmtree(d), _close_all(seg) — any call
            # receiving the name inside a finally counts as a release path
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    out.add(arg.id)
        return out

    def _transferred_names(self, fn: FunctionInfo) -> set[str]:
        """Names whose ownership provably leaves the function."""
        out: set[str] = set()
        for node in _own_nodes(fn.node):
            if isinstance(node, (ast.Return, ast.Yield)) \
                    and node.value is not None:
                out |= _names_in(node.value)
            elif isinstance(node, ast.Assign):
                # self.x = n / container[k] = n: instance takes ownership
                for tgt in node.targets:
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)) \
                            and isinstance(node.value, ast.Name):
                        out.add(node.value.id)
        return out

    def _marker_names(self, fn: FunctionInfo,
                      markers: dict[int, set[str]]) -> set[str]:
        out: set[str] = set()
        end = getattr(fn.node, "end_lineno", None)
        start = getattr(fn.node, "lineno", 1)
        for lineno, names in markers.items():
            if end is None or start <= lineno <= end:
                out |= names
        return out
