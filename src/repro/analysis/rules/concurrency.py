"""CONC — concurrency rules (whole-program pass).

Three failure modes the threaded service stack (PR 8) makes possible:

* **CONC-001** — a blocking call (``time.sleep``, sync file/socket I/O,
  ``pool.map``) directly in an ``async def`` body in ``repro.service`` /
  ``repro.obs.server``, or reachable from one through sync project
  calls. One blocked coroutine stalls every request on the loop. Nested
  *sync* defs are exempt: they run on an executor, not the loop.

* **CONC-002** — a write to module-level mutable state from a function
  reachable by worker threads, without a module-level ``threading.Lock``
  held. Thread roots are ``threading.Thread(target=...)``,
  ``run_in_executor`` and thread-pool ``submit``/``map`` arguments;
  process-pool submissions are excluded (workers get their own
  interpreter, so module state is not shared).

* **CONC-003** — two locks acquired in inconsistent order across the
  project (``A`` then ``B`` in one function, ``B`` then ``A`` in
  another): the classic deadlock shape. Lock identity is the module-level
  name or ``Class.attr`` for ``self._lock``-style locks; order pairs
  follow ``call`` edges so a function acquiring ``B`` inside a region
  that holds ``A`` is seen even when the ``with`` blocks live in
  different functions.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectModel
from repro.analysis.registry import WholeProgramRule, dotted_name, register

#: canonical (post-``expand_name``) names that block the event loop.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep",
    "os.system": "os.system",
    "subprocess.run": "subprocess.run",
    "subprocess.call": "subprocess.call",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "socket.create_connection": "socket.create_connection",
    "urllib.request.urlopen": "urllib.request.urlopen",
    "open": "sync file open",
}

LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock"})

#: async modules the loop-blocking rule watches.
ASYNC_SCOPE_PREFIXES = ("repro.service", "repro.obs.server")

_CHAIN_DEPTH = 6


def _in_async_scope(modname: str) -> bool:
    return any(modname == p or modname.startswith(p + ".")
               for p in ASYNC_SCOPE_PREFIXES)


def _own_calls_with_names(model: ProjectModel, fn: FunctionInfo):
    """(Call node, canonical dotted name) for this function's own calls."""
    mod = model.modules[fn.module]
    if isinstance(fn.node, ast.Lambda):
        stack: list[ast.AST] = [fn.node.body]
    else:
        stack = list(getattr(fn.node, "body", []))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            continue
        if isinstance(cur, ast.Call):
            name = dotted_name(cur.func)
            if name is not None:
                yield cur, name, model.expand_name(mod, name)
        stack.extend(ast.iter_child_nodes(cur))


def _blocking_reason(model: ProjectModel, fn: FunctionInfo, call: ast.Call,
                     name: str, canonical: str) -> str | None:
    if canonical in BLOCKING_CALLS:
        return BLOCKING_CALLS[canonical]
    if "." in name and name.endswith((".map", ".result")):
        recv = name.rpartition(".")[0]
        rtype = None
        if recv == "self" or recv.startswith("self."):
            attr = recv.split(".", 1)[1] if "." in recv else None
            if attr and fn.cls is not None:
                rtype = model.classes[fn.cls].attr_types.get(attr)
        else:
            rtype = model.local_types(fn).get(recv.partition(".")[0])
        if rtype in ("concurrent.futures.ThreadPoolExecutor",
                     "concurrent.futures.ProcessPoolExecutor"):
            return f"blocking executor {name.rpartition('.')[2]}()"
    return None


@register
class NoBlockingInAsync(WholeProgramRule):
    id = "CONC-001"
    family = "concurrency"
    description = ("blocking call (time.sleep / sync I/O / pool.map) inside "
                   "an async def body")
    rationale = ("the service runs every request on one event loop; a "
                 "single blocking call stalls all in-flight requests — "
                 "run blocking work via loop.run_in_executor instead")

    def check_program(self, model: ProjectModel) -> Iterable[Diagnostic]:
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            if not fn.is_async or not _in_async_scope(fn.module):
                continue
            # direct blocking calls on the loop
            for call, name, canonical in _own_calls_with_names(model, fn):
                reason = _blocking_reason(model, fn, call, name, canonical)
                if reason is not None:
                    yield self.pdiag(
                        fn.relpath, call.lineno,
                        f"{fn.qualname}: {reason} blocks the event loop; "
                        "await it via loop.run_in_executor")
            # blocking calls reached through sync project callees
            chain = self._find_blocking_chain(model, fn)
            if chain is not None:
                path, reason, line = chain
                yield self.pdiag(
                    fn.relpath, line,
                    f"{fn.qualname}: calls {' -> '.join(path)} which "
                    f"performs {reason} on the event loop; move the chain "
                    "to an executor")

    def _find_blocking_chain(self, model: ProjectModel, fn: FunctionInfo):
        """DFS over sync ``call``/``higher-order`` edges for blocking work."""
        seen = {fn.qualname}

        def visit(qual: str, depth: int) -> tuple[list[str], str] | None:
            if depth > _CHAIN_DEPTH:
                return None
            callee = model.functions.get(qual)
            if callee is None or callee.is_async:
                return None
            for call, name, canonical in _own_calls_with_names(model, callee):
                reason = _blocking_reason(model, callee, call, name, canonical)
                if reason is not None:
                    return [callee.qualname], reason
            for edge in callee.edges:
                if edge.kind not in ("call", "higher-order"):
                    continue
                if edge.callee in seen:
                    continue
                seen.add(edge.callee)
                hit = visit(edge.callee, depth + 1)
                if hit is not None:
                    path, reason = hit
                    return [callee.qualname, *path], reason
            return None

        for edge in fn.edges:
            if edge.kind not in ("call", "higher-order"):
                continue
            if edge.callee in seen:
                continue
            seen.add(edge.callee)
            hit = visit(edge.callee, 1)
            if hit is not None:
                path, reason = hit
                return path, reason, edge.line
        return None


# --------------------------------------------------------------------------
# CONC-002: unlocked module-state writes from thread-reachable code


def _module_locks(model: ProjectModel, mod: ModuleInfo) -> set[str]:
    locks = set()
    for name, value in mod.assigns.items():
        if isinstance(value, ast.Call):
            ctor = dotted_name(value.func)
            if ctor and model.expand_name(mod, ctor) in LOCK_TYPES:
                locks.add(name)
    return locks


def _mutable_globals(model: ProjectModel, mod: ModuleInfo) -> set[str]:
    """Module-level names that functions may write: containers + flags."""
    out = set()
    for name, value in mod.assigns.items():
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            out.add(name)
        elif isinstance(value, ast.Call):
            ctor = dotted_name(value.func)
            if ctor and model.expand_name(mod, ctor).rpartition(".")[2] in (
                    "dict", "list", "set", "defaultdict", "deque",
                    "OrderedDict", "Counter"):
                out.add(name)
    # any name a function rebinds via `global` is shared mutable state too
    for fn in model.functions.values():
        if fn.module != mod.name:
            continue
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                out.update(n for n in node.names if n in mod.assigns)
    return out


_MUTATORS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "remove", "insert", "discard", "appendleft",
})


def thread_roots(model: ProjectModel) -> set[str]:
    return {e.callee for fn in model.functions.values()
            for e in fn.edges if e.kind == "spawn-thread"}


@register
class LockedSharedState(WholeProgramRule):
    id = "CONC-002"
    family = "concurrency"
    description = ("module-level mutable state written from thread-reachable "
                   "code without a lock")
    rationale = ("the service handlers and sinks run on worker threads; an "
                 "unlocked read-modify-write on module state is a data race "
                 "that shows up as lost telemetry or duplicated warnings "
                 "under load")

    def check_program(self, model: ProjectModel) -> Iterable[Diagnostic]:
        reachable = model.reachable(thread_roots(model))
        for qual in sorted(reachable):
            fn = model.functions.get(qual)
            if fn is None:
                continue
            yield from self._check_function(model, fn)

    def _check_function(self, model: ProjectModel,
                        fn: FunctionInfo) -> Iterable[Diagnostic]:
        mod = model.modules[fn.module]
        mutables = _mutable_globals(model, mod)
        if not mutables:
            return
        locks = _module_locks(model, mod)
        declared_global = {
            n for node in ast.walk(fn.node) if isinstance(node, ast.Global)
            for n in node.names}
        locals_and_params = set(fn.params) | {
            t.id for node in ast.walk(fn.node)
            if isinstance(node, ast.Assign)
            for t in node.targets if isinstance(t, ast.Name)
        } - declared_global

        def is_shared(name: str) -> bool:
            if name not in mutables:
                return False
            # a rebound global needs the `global` declaration; container
            # mutation reaches the module object without one
            return name in declared_global or name not in locals_and_params

        body = getattr(fn.node, "body", [])
        if not isinstance(body, list):    # lambda: no write statements
            return
        yield from self._walk(model, fn, mod, locks, is_shared,
                              body=body, locked=False)

    def _walk(self, model, fn, mod, locks, is_shared, body,
              locked) -> Iterable[Diagnostic]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    self._is_lock_expr(model, fn, mod, locks,
                                       item.context_expr)
                    for item in stmt.items)
                yield from self._walk(model, fn, mod, locks, is_shared,
                                      stmt.body, holds)
                continue
            sub_blocks = [getattr(stmt, attr, []) for attr in
                          ("body", "orelse", "finalbody")]
            handlers = getattr(stmt, "handlers", [])
            if any(sub_blocks) or handlers:
                for block in sub_blocks:
                    yield from self._walk(model, fn, mod, locks, is_shared,
                                          block, locked)
                for handler in handlers:
                    yield from self._walk(model, fn, mod, locks, is_shared,
                                          handler.body, locked)
                # fall through: the statement head may also write
            if not locked:
                yield from self._writes_in(fn, stmt, is_shared)

    def _is_lock_expr(self, model: ProjectModel, fn: FunctionInfo,
                      mod: ModuleInfo, locks: set[str],
                      expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in locks
        name = dotted_name(expr)
        if name and name.startswith("self.") and fn.cls is not None:
            attr = name.split(".", 1)[1]
            if "." not in attr and \
                    model.classes[fn.cls].attr_types.get(attr) in LOCK_TYPES:
                return True
        return False

    def _writes_in(self, fn: FunctionInfo, stmt: ast.stmt,
                   is_shared) -> Iterable[Diagnostic]:
        head_nodes = self._head_nodes(stmt)
        for node in head_nodes:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for tgt in targets:
                    base = tgt
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Name) and is_shared(base.id):
                        yield self._finding(fn, node, base.id)
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    base = tgt.value if isinstance(tgt, ast.Subscript) else tgt
                    if isinstance(base, ast.Name) and is_shared(base.id):
                        yield self._finding(fn, node, base.id)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and "." in name:
                    recv, _, meth = name.rpartition(".")
                    if meth in _MUTATORS and "." not in recv \
                            and is_shared(recv):
                        yield self._finding(fn, node, recv)

    def _head_nodes(self, stmt: ast.stmt):
        """Nodes of a statement excluding nested block bodies and defs."""
        skip_blocks = {id(s) for attr in ("body", "orelse", "finalbody")
                       for s in getattr(stmt, attr, [])}
        for handler in getattr(stmt, "handlers", []):
            skip_blocks.update(id(s) for s in handler.body)
        stack: list[ast.AST] = [stmt]
        while stack:
            cur = stack.pop()
            if id(cur) in skip_blocks and cur is not stmt:
                continue
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)) and cur is not stmt:
                continue
            yield cur
            for child in ast.iter_child_nodes(cur):
                if id(child) not in skip_blocks:
                    stack.append(child)

    def _finding(self, fn: FunctionInfo, node: ast.AST,
                 name: str) -> Diagnostic:
        return self.pdiag(
            fn.relpath, getattr(node, "lineno", fn.line),
            f"{fn.qualname}: module-level state '{name}' is written here "
            "and this function is reachable from worker threads; guard "
            "the write with a module-level threading.Lock")


# --------------------------------------------------------------------------
# CONC-003: inconsistent lock-acquisition order


def _lock_identity(model: ProjectModel, fn: FunctionInfo, mod: ModuleInfo,
                   module_locks: set[str], expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name) and expr.id in module_locks:
        return f"{mod.name}.{expr.id}"
    name = dotted_name(expr)
    if name and name.startswith("self.") and fn.cls is not None:
        attr = name.split(".", 1)[1]
        if "." in attr:
            return None
        if model.classes[fn.cls].attr_types.get(attr) in LOCK_TYPES:
            return f"{fn.cls}.{attr}"
    return None


@register
class ConsistentLockOrder(WholeProgramRule):
    id = "CONC-003"
    family = "concurrency"
    description = "two locks acquired in inconsistent order across functions"
    rationale = ("thread A holding L1 waiting on L2 while thread B holds "
                 "L2 waiting on L1 deadlocks the service with no traceback; "
                 "a single global acquisition order eliminates the cycle")

    def check_program(self, model: ProjectModel) -> Iterable[Diagnostic]:
        acquires: dict[str, set[str]] = {}   # fn qual -> lock ids acquired
        pairs: dict[tuple[str, str], tuple[str, int, str]] = {}

        def record(fn: FunctionInfo, held: tuple[str, ...], lock: str,
                   line: int) -> None:
            for h in held:
                if h != lock and (h, lock) not in pairs:
                    pairs[(h, lock)] = (fn.relpath, line, fn.qualname)

        def walk(fn: FunctionInfo, mod: ModuleInfo, module_locks: set[str],
                 body, held: tuple[str, ...]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    new_held = held
                    for item in stmt.items:
                        lock = _lock_identity(model, fn, mod, module_locks,
                                              item.context_expr)
                        if lock is not None:
                            acquires.setdefault(fn.qualname, set()).add(lock)
                            record(fn, new_held, lock, stmt.lineno)
                            new_held = (*new_held, lock)
                    walk(fn, mod, module_locks, stmt.body, new_held)
                    continue
                for attr in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, attr, [])
                    if sub:
                        walk(fn, mod, module_locks, sub, held)
                for handler in getattr(stmt, "handlers", []):
                    walk(fn, mod, module_locks, handler.body, held)

        mod_locks_cache: dict[str, set[str]] = {}
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            mod = model.modules[fn.module]
            if mod.name not in mod_locks_cache:
                mod_locks_cache[mod.name] = _module_locks(model, mod)
            body = getattr(fn.node, "body", [])
            if isinstance(body, list):
                walk(fn, mod, mod_locks_cache[mod.name], body, ())

        # propagate one call hop: holding A while calling f() that acquires B
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            mod = model.modules[fn.module]
            module_locks = mod_locks_cache[mod.name]
            self._call_pairs(model, fn, mod, module_locks, acquires, pairs)

        conflicts = sorted(
            (a, b) for (a, b) in pairs
            if (b, a) in pairs and a < b)
        for a, b in conflicts:
            path, line, where = pairs[(a, b)]
            rpath, rline, rwhere = pairs[(b, a)]
            yield self.pdiag(
                path, line,
                f"{where}: acquires {a} then {b}, but {rwhere} "
                f"({rpath}:{rline}) acquires them in the opposite order; "
                "pick one global order")

    def _call_pairs(self, model, fn, mod, module_locks, acquires,
                    pairs) -> None:
        def walk(body, held):
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    new_held = held
                    for item in stmt.items:
                        lock = _lock_identity(model, fn, mod, module_locks,
                                              item.context_expr)
                        if lock is not None:
                            new_held = (*new_held, lock)
                    if new_held != held and new_held:
                        start = getattr(stmt, "lineno", 0)
                        end = getattr(stmt, "end_lineno", start)
                        for edge in fn.edges:
                            if edge.kind in ("call", "higher-order") \
                                    and start <= edge.line <= end:
                                for lock in acquires.get(edge.callee, ()):
                                    for h in new_held:
                                        if h != lock and (h, lock) not in pairs:
                                            pairs[(h, lock)] = (
                                                fn.relpath, edge.line,
                                                fn.qualname)
                    walk(stmt.body, new_held)
                    continue
                for attr in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, attr, [])
                    if sub:
                        walk(sub, held)
                for handler in getattr(stmt, "handlers", []):
                    walk(handler.body, held)

        body = getattr(fn.node, "body", [])
        if isinstance(body, list):
            walk(body, ())
