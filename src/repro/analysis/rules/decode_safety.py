"""DEC — decode-safety rules.

``docs/ROBUSTNESS.md`` defines the decode exception discipline: decoders
translate malformed input into ``DECODE_ERRORS`` / ``CorruptStreamError``
so salvage mode can distinguish "corrupt chunk" from "bug in the codec".
An ``except`` that swallows arbitrary exceptions inside a decoder hides
real bugs as corruption; an ``except`` catching exotic types suggests the
decoder is leaking implementation details instead of raising
``CorruptStreamError``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (
    ModuleContext,
    Rule,
    dotted_name,
    register,
    walk_functions,
)

#: Function names treated as decoders. Matches ``decompress*``, ``decode*``
#: (with optional leading underscore) and ``read_*`` entry points.
DECODER_NAME = re.compile(r"^_?(decompress|decode)\w*$|^read_\w+$")

#: Exception names decoders may catch: the documented DECODE_ERRORS tuple
#: members, the tuple itself, CorruptStreamError, and stdlib subclasses of
#: those members that common decode steps raise.
ALLOWED_CATCHES = frozenset({
    "DECODE_ERRORS",
    "CorruptStreamError",
    "ValueError", "EOFError", "KeyError", "IndexError", "OverflowError",
    # ValueError subclasses raised by header/metadata decoding
    "UnicodeDecodeError", "json.JSONDecodeError", "JSONDecodeError",
    # struct unpack failures are decode failures
    "struct.error",
})

BROAD_CATCHES = frozenset({"Exception", "BaseException"})

#: Service request handlers: ``do_*`` / ``handle_*`` functions under
#: ``src/repro/service/``. The HTTP app maps exceptions to status codes
#: from a closed vocabulary, so handlers may catch only that vocabulary.
HANDLER_NAME = re.compile(r"^(do|handle)_\w+$")

#: Exceptions service handlers may catch: the decode vocabulary plus the
#: declared service errors (repro.service.schemas.SERVICE_ERRORS) and the
#: dispatch-deadline error they translate.
SERVICE_ALLOWED_CATCHES = ALLOWED_CATCHES | frozenset({
    "ServiceError", "SERVICE_ERRORS",
    "BadRequestError", "NotFoundError", "RateLimitedError", "QueueFullError",
    "BreakerOpenError", "BlobIOError", "BlobCorruptError", "DeadlineError",
    "CodecFailureError", "DeadlineExceededError",
})

#: Cluster infrastructure (``repro.service.{cluster,router,supervise}``):
#: its handlers sit on the raw-socket side of the service boundary —
#: forwarding requests to shard processes, probing their health — so the
#: transport exception family joins *their* closed vocabulary. The
#: discipline still applies: every such catch must fold the failure into
#: ``ShardUnavailableError`` (or ``ConnectionError`` for probes), never
#: swallow it.
CLUSTER_PATH = re.compile(
    r"(^|/)src/repro/service/(cluster|router|supervise)\.py$")
CLUSTER_ALLOWED_CATCHES = SERVICE_ALLOWED_CATCHES | frozenset({
    "ShardUnavailableError",
    "ConnectionError", "OSError", "TimeoutError",
    "HTTPException", "IncompleteReadError",
})


def _exception_names(node: ast.expr | None) -> list[tuple[ast.AST, str | None]]:
    """Flatten ``except A`` / ``except (A, B)`` into [(node, dotted-name)]."""
    if node is None:
        return [(ast.Constant(value=None), None)]  # bare except
    if isinstance(node, ast.Tuple):
        return [(elt, dotted_name(elt)) for elt in node.elts]
    return [(node, dotted_name(node))]


def _iter_decoder_handlers(ctx: ModuleContext):
    for fn, _ancestors in walk_functions(ctx.tree):
        if not DECODER_NAME.match(fn.name):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.ExceptHandler):
                yield fn, node


@register
class DecoderCatchDiscipline(Rule):
    id = "DEC-001"
    family = "decode-safety"
    description = "decoder except clause catches a type outside DECODE_ERRORS/CorruptStreamError"
    rationale = ("salvage mode relies on decoders raising only the documented "
                 "corruption exceptions; catching anything else in a decoder "
                 "hides the contract violation instead of fixing the raiser")
    default_paths = ("src/repro/**",)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for fn, handler in _iter_decoder_handlers(ctx):
            for node, name in _exception_names(handler.type):
                if name is None and handler.type is None:
                    continue  # bare except: DEC-002's business
                if name is None:
                    yield self.diag(ctx, handler,
                                    f"decoder {fn.name}() catches a dynamic "
                                    "exception expression; catch DECODE_ERRORS or "
                                    "CorruptStreamError explicitly")
                    continue
                if name in BROAD_CATCHES:
                    continue  # DEC-002's business
                short = name.rsplit(".", 1)[-1]
                if name not in ALLOWED_CATCHES and short not in ALLOWED_CATCHES:
                    yield self.diag(
                        ctx, node if hasattr(node, "lineno") else handler,
                        f"decoder {fn.name}() catches {name}, which is not in "
                        "DECODE_ERRORS or CorruptStreamError; make the raising "
                        "code raise CorruptStreamError instead",
                        line=getattr(node, "lineno", handler.lineno),
                        col=getattr(node, "col_offset", handler.col_offset),
                    )


@register
class DecoderBroadExcept(Rule):
    id = "DEC-002"
    family = "decode-safety"
    description = "bare/broad except inside a decoder function"
    rationale = ("`except Exception` in a decoder turns codec bugs into "
                 "'corrupt input'; it is only acceptable at documented "
                 "boundaries, with a written reason")
    default_paths = ("src/repro/**",)
    requires_reason = True

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for fn, handler in _iter_decoder_handlers(ctx):
            if handler.type is None:
                yield self.diag(ctx, handler,
                                f"bare except in decoder {fn.name}(); catch "
                                "DECODE_ERRORS, or suppress with a reason")
                continue
            for node, name in _exception_names(handler.type):
                if name in BROAD_CATCHES:
                    yield self.diag(
                        ctx, handler,
                        f"decoder {fn.name}() catches {name}; catch DECODE_ERRORS "
                        "or CorruptStreamError, or suppress with a reason "
                        "(# repro-lint: disable=DEC-002 -- <why>)")


@register
class ServiceHandlerCatchDiscipline(Rule):
    id = "DEC-003"
    family = "decode-safety"
    description = ("service handler except clause catches a type outside "
                   "DECODE_ERRORS/SERVICE_ERRORS")
    rationale = ("the HTTP app maps exceptions to documented status codes; a "
                 "handler that catches outside the declared vocabulary either "
                 "swallows a real bug as a service error or invents an "
                 "undocumented failure mode — raise a ServiceError subclass "
                 "at the point of failure instead")
    default_paths = ("src/repro/service/**",)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        allowed = (CLUSTER_ALLOWED_CATCHES
                   if CLUSTER_PATH.search(ctx.relpath)
                   else SERVICE_ALLOWED_CATCHES)
        for fn, _ancestors in walk_functions(ctx.tree):
            if not HANDLER_NAME.match(fn.name):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.diag(
                        ctx, node,
                        f"bare except in service handler {fn.name}(); catch "
                        "DECODE_ERRORS or a declared ServiceError")
                    continue
                for expr, name in _exception_names(node.type):
                    if name is None:
                        yield self.diag(
                            ctx, node,
                            f"service handler {fn.name}() catches a dynamic "
                            "exception expression; catch DECODE_ERRORS or a "
                            "declared ServiceError explicitly")
                        continue
                    short = name.rsplit(".", 1)[-1]
                    if name not in allowed and short not in allowed:
                        yield self.diag(
                            ctx, expr if hasattr(expr, "lineno") else node,
                            f"service handler {fn.name}() catches {name}, "
                            "which is outside DECODE_ERRORS and the declared "
                            "service exceptions (SERVICE_ERRORS); raise a "
                            "ServiceError subclass at the failure site instead",
                            line=getattr(expr, "lineno", node.lineno),
                            col=getattr(expr, "col_offset", node.col_offset),
                        )
