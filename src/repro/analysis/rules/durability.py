"""DUR — durability rules.

PR 5's contract: every artifact the toolkit writes (compressed blobs,
RCDF containers, reports, configs, telemetry exports) is committed with
:func:`repro.runtime.atomic_write` — temp file in the same directory,
fsync, atomic rename — so a crash mid-write leaves the old file or the
new file, never a torn hybrid that a later read misdiagnoses as
corruption. A bare ``open(path, "wb")`` in an artifact-writing module
silently reintroduces that hazard.

Append-mode opens are exempt: append journaling (JSONL sinks, the run
ledger) is the *other* sanctioned durability pattern — its torn-tail
healing lives in :func:`repro.runtime.heal_jsonl_tail`.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ModuleContext, Rule, dotted_name, register

#: Modules whose writes are user-visible artifacts (crash-consistency
#: contract). repro/runtime itself is excluded by construction: it is the
#: layer that implements the primitive.
ARTIFACT_WRITER_PATHS = (
    "src/repro/cli.py",
    "src/repro/io/**",
    "src/repro/experiments/**",
    "src/repro/obs/sinks.py",
)

#: Path/file helpers that replace a file's contents in place.
REPLACING_METHODS = ("write_text", "write_bytes")


def _write_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open``-style call if it truncates/creates."""
    mode_node = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return None  # default mode "r"
    if not isinstance(mode_node, ast.Constant) or not isinstance(mode_node.value, str):
        return None  # dynamic mode: not statically checkable
    mode = mode_node.value
    if any(c in mode for c in "wx") and "a" not in mode:
        return mode
    return None


@register
class ArtifactWritesAreAtomic(Rule):
    id = "DUR-001"
    family = "durability"
    description = "bare open(.., 'w'/'wb') artifact write outside repro.runtime.atomic_write"
    rationale = ("a crash mid-write leaves a torn artifact that later reads "
                 "as CorruptStreamError/JSONDecodeError with no hint it was "
                 "a local torn write; route the write through "
                 "repro.runtime.atomic_write (or append via a healed JSONL "
                 "journal) so every commit is all-or-nothing")
    default_paths = ARTIFACT_WRITER_PATHS
    requires_reason = True

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "open" or (name is not None and name.endswith(".open")):
                mode = _write_mode(node)
                if mode is not None:
                    yield self.diag(ctx, node,
                                    f"plain open(..., {mode!r}) writes an "
                                    "artifact non-atomically; use "
                                    "repro.runtime.atomic_write so a crash "
                                    "cannot leave a torn file")
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr in REPLACING_METHODS:
                yield self.diag(ctx, node,
                                f".{node.func.attr}() replaces file contents "
                                "non-atomically; use repro.runtime.atomic_write "
                                "so a crash cannot leave a torn file")
