"""DET — determinism rules.

The paper's headline claim (reproducible compression ratios, PAPER.md §V)
requires the compression pipeline to be a pure function of its inputs.
These rules ban wall-clock reads, unseeded randomness, and OS entropy
inside the numeric packages. ``repro.obs`` and the WAN simulator are
deliberately out of scope: telemetry timestamps and simulated clocks do
not feed the bitstream.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ModuleContext, Rule, dotted_name, register

#: Packages whose outputs must be bit-identical across runs.
DETERMINISTIC_PATHS = (
    "src/repro/core/**",
    "src/repro/encoding/**",
    "src/repro/prediction/**",
    "src/repro/quantization/**",
    "src/repro/baselines/**",
)

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
})

#: Legacy global-state RNG entry points: even "seeded" use mutates process
#: state other call sites observe, so ban the whole namespace here.
GLOBAL_RNG_CALLS = frozenset({
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.gauss", "random.normalvariate", "random.choice", "random.choices",
    "random.sample", "random.shuffle", "random.seed", "random.betavariate",
    "np.random.rand", "np.random.randn", "np.random.randint",
    "np.random.random", "np.random.random_sample", "np.random.choice",
    "np.random.shuffle", "np.random.permutation", "np.random.normal",
    "np.random.uniform", "np.random.standard_normal", "np.random.seed",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.random_sample",
    "numpy.random.choice", "numpy.random.shuffle",
    "numpy.random.permutation", "numpy.random.normal",
    "numpy.random.uniform", "numpy.random.standard_normal",
    "numpy.random.seed",
})

#: Constructors that are fine *with* an explicit seed, banned without one.
SEEDABLE_CTORS = frozenset({
    "random.Random",
    "np.random.default_rng", "numpy.random.default_rng",
    "np.random.RandomState", "numpy.random.RandomState",
    "np.random.SeedSequence", "numpy.random.SeedSequence",
})

ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
})


def _calls(ctx: ModuleContext):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                yield node, name


@register
class BanWallClock(Rule):
    id = "DET-001"
    family = "determinism"
    description = "wall-clock read (time.time / datetime.now) in a deterministic package"
    rationale = ("compression output must be a pure function of the input; "
                 "wall-clock values leaking into headers or decisions break "
                 "bit-identical reproduction")
    default_paths = DETERMINISTIC_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node, name in _calls(ctx):
            if name in WALL_CLOCK_CALLS:
                yield self.diag(ctx, node,
                                f"call to {name}() in a deterministic package; "
                                "use a caller-supplied timestamp or repro.utils.Timer "
                                "(perf_counter) for durations")


@register
class BanUnseededRandom(Rule):
    id = "DET-002"
    family = "determinism"
    description = "unseeded or global-state RNG in a deterministic package"
    rationale = ("sampling-based stages (autotune block sampling, periodicity "
                 "probes) must take an explicit seed so identical inputs give "
                 "identical blobs")
    default_paths = DETERMINISTIC_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node, name in _calls(ctx):
            if name in GLOBAL_RNG_CALLS:
                yield self.diag(ctx, node,
                                f"global-state RNG call {name}(); use "
                                "np.random.default_rng(seed) threaded from the caller")
            elif name in SEEDABLE_CTORS and not node.args and not node.keywords:
                yield self.diag(ctx, node,
                                f"{name}() constructed without a seed; pass an "
                                "explicit seed argument")


@register
class BanEntropySources(Rule):
    id = "DET-003"
    family = "determinism"
    description = "OS entropy source (os.urandom / uuid4 / secrets) in a deterministic package"
    rationale = ("entropy in ids or payloads makes blobs differ across runs, "
                 "defeating the differential oracles and determinism tests")
    default_paths = DETERMINISTIC_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node, name in _calls(ctx):
            if name in ENTROPY_CALLS:
                yield self.diag(ctx, node,
                                f"call to {name}() in a deterministic package; "
                                "derive ids from content hashes (BLAKE2b) instead")
