"""API — public-surface consistency rules for package ``__init__`` files.

``__all__`` is the package's published contract: it drives ``from repro
import *``, doc tooling, and tells pyflakes-level linters which re-exports
are intentional. These rules keep it present and truthful.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ModuleContext, Rule, register

INIT_PATHS = ("src/repro/**/__init__.py", "src/repro/__init__.py")


def _collect_all(tree: ast.Module) -> tuple[list[tuple[str, ast.AST]], bool]:
    """(entries, found) for every string literal assigned into __all__."""
    entries: list[tuple[str, ast.AST]] = []
    found = False

    def targets(node):
        if isinstance(node, ast.Assign):
            return node.targets
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        return []

    for node in tree.body:
        for tgt in targets(node):
            if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                found = True
                value = getattr(node, "value", None)
                if isinstance(value, (ast.List, ast.Tuple)):
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            entries.append((elt.value, elt))
    return entries, found


def _bound_names(tree: ast.Module) -> set[str]:
    """Module-level names bound by imports, defs, and assignments."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                for sub in ast.walk(tgt):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # names bound on either branch count (conditional imports)
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name.split(".")[0])
    return names


def _has_module_getattr(tree: ast.Module) -> bool:
    """True if the module defines a top-level ``__getattr__`` (PEP 562)."""
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == "__getattr__"
        for node in tree.body
    )


def _reexports(tree: ast.Module) -> Iterable[tuple[str, ast.AST]]:
    """Public names introduced by module-level ``from X import Y``."""
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom) or node.module == "__future__":
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            if not bound.startswith("_"):
                yield bound, node


@register
class InitHasAll(Rule):
    id = "API-001"
    family = "api-consistency"
    description = "package __init__ without __all__"
    rationale = ("__all__ is the public-API contract; without it, star "
                 "imports and doc generators guess, and F401-level linters "
                 "cannot distinguish re-exports from dead imports")
    default_paths = INIT_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        _entries, found = _collect_all(ctx.tree)
        if not found:
            yield self.diag(ctx, None,
                            "package __init__ defines no __all__; list the "
                            "intended public names explicitly")


@register
class AllEntriesExist(Rule):
    id = "API-002"
    family = "api-consistency"
    description = "__all__ names a symbol the module does not define or import"
    rationale = ("a stale __all__ entry makes `from pkg import *` raise "
                 "AttributeError and advertises API that does not exist")
    default_paths = INIT_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        entries, found = _collect_all(ctx.tree)
        if not found:
            return
        if _has_module_getattr(ctx.tree):
            # PEP 562: a module-level __getattr__ resolves names dynamically
            # (lazy exports), so statically-unbound __all__ entries are fine.
            return
        bound = _bound_names(ctx.tree)
        for name, node in entries:
            if name not in bound:
                yield self.diag(ctx, node,
                                f"__all__ lists {name!r} but the module never "
                                "binds it")


@register
class ReexportsListed(Rule):
    id = "API-003"
    family = "api-consistency"
    description = "public re-export missing from __all__"
    rationale = ("a from-import in a package __init__ is a deliberate "
                 "re-export; leaving it out of __all__ makes the public "
                 "surface drift from the declared one")
    default_paths = INIT_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        entries, found = _collect_all(ctx.tree)
        if not found:
            return  # API-001 already fired
        declared = {name for name, _ in entries}
        for name, node in _reexports(ctx.tree):
            if name not in declared:
                yield self.diag(ctx, node,
                                f"{name!r} is re-exported here but missing from "
                                "__all__; add it or alias it with a leading "
                                "underscore")
