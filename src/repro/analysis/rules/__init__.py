"""Built-in rule families. Importing this package registers every rule.

Third-party/experiment rules can register the same way: subclass
:class:`repro.analysis.Rule` and decorate with
:func:`repro.analysis.register` before constructing the engine.
"""

from repro.analysis.rules import (
    api_consistency,
    concurrency,
    decode_safety,
    determinism,
    durability,
    exception_flow,
    numpy_hygiene,
    obs_coverage,
    repo_hygiene,
    resource_lifecycle,
)

__all__ = [
    "api_consistency",
    "concurrency",
    "decode_safety",
    "determinism",
    "durability",
    "exception_flow",
    "numpy_hygiene",
    "obs_coverage",
    "repo_hygiene",
    "resource_lifecycle",
]
