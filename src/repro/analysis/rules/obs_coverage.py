"""OBS — observability coverage rules.

PR 2's contract: every public codec entry point emits a trace span so
experiment harnesses can compare codecs straight from telemetry. A new
baseline added without ``@traced_compress`` / ``@traced_decompress`` is
invisible in traces and skews cross-codec metric comparisons.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (
    ModuleContext,
    Rule,
    dotted_name,
    register,
    walk_functions,
)

INSTRUMENTED_PATHS = (
    "src/repro/core/**",
    "src/repro/baselines/**",
)

#: Names that, when used as a decorator or called in the body, prove the
#: function participates in tracing even without a repro.obs import alias.
SPAN_ATTR_SUFFIXES = ("span", "traced_compress", "traced_decompress")


def _obs_bound_names(tree: ast.Module) -> set[str]:
    """Local names bound from repro.obs (from-imports, incl. aliases)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro.obs"):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "repro":
            for alias in node.names:
                if alias.name == "obs":
                    names.add(alias.asname or "obs")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.obs"):
                    names.add((alias.asname or "repro").split(".")[0])
    return names


def _uses_obs(fn: ast.AST, obs_names: set[str]) -> bool:
    for node in ast.walk(fn):
        name = None
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
        elif isinstance(node, (ast.Attribute, ast.Name)):
            name = dotted_name(node)
        if name is None:
            continue
        root = name.split(".")[0]
        if root in obs_names:
            return True
        if name.rsplit(".", 1)[-1] in SPAN_ATTR_SUFFIXES:
            return True
    return False


@register
class CodecEntryPointTraced(Rule):
    id = "OBS-001"
    family = "obs-coverage"
    description = "public compress*/decompress* entry point without a repro.obs span"
    rationale = ("every codec must emit the standard span + metrics so "
                 "cross-codec comparisons and the telemetry CI smoke keep "
                 "seeing the full picture; decorate with @traced_compress/"
                 "@traced_decompress or open a span in the body")
    default_paths = INSTRUMENTED_PATHS

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        obs_names = _obs_bound_names(ctx.tree)
        for fn, ancestors in walk_functions(ctx.tree):
            if fn.name.startswith("_"):
                continue
            if not (fn.name.startswith("compress") or fn.name.startswith("decompress")):
                continue
            # nested helpers inherit the outer entry point's span
            if any(isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                   for a in ancestors):
                continue
            decorated = any(
                (dotted_name(d if not isinstance(d, ast.Call) else d.func) or "")
                .rsplit(".", 1)[-1] in ("traced_compress", "traced_decompress")
                for d in fn.decorator_list
            )
            if decorated or _uses_obs(fn, obs_names):
                continue
            kind = "traced_compress" if fn.name.startswith("compress") \
                else "traced_decompress"
            yield self.diag(ctx, fn,
                            f"codec entry point {fn.name}() has no repro.obs "
                            f"coverage; add @{kind} or wrap the body in "
                            "repro.obs.span(...)")
