"""HYG — repository hygiene rules (project-level pre-checks).

PR 3 removed 15 committed ``.pyc`` files and added the ``.gitignore``;
this rule makes the fix permanent by failing the lint run if bytecode
ever gets tracked again.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ProjectRule, register


def _git_tracked_files(root: Path) -> list[str] | None:
    """Tracked paths, or None when git/the repo is unavailable."""
    try:
        proc = subprocess.run(
            ["git", "ls-files", "-z"], cwd=root,
            capture_output=True, timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return [p for p in proc.stdout.decode("utf-8", "replace").split("\0") if p]


@register
class NoTrackedBytecode(ProjectRule):
    id = "HYG-001"
    family = "repo-hygiene"
    description = "compiled python bytecode tracked by git"
    rationale = ("committed __pycache__/*.pyc files are machine-specific "
                 "noise that shadows real sources and churns every diff; "
                 ".gitignore covers them — this check guarantees they never "
                 "sneak back in")

    def check_project(self, root: Path) -> Iterable[Diagnostic]:
        tracked = _git_tracked_files(root)
        if tracked is None:
            return  # not a git checkout (e.g. sdist): nothing to enforce
        for path in tracked:
            parts = path.split("/")
            if "__pycache__" in parts or path.endswith((".pyc", ".pyo")):
                yield Diagnostic(
                    rule_id=self.id, family=self.family, path=path,
                    line=1, col=0, severity=self.severity,
                    message="compiled bytecode is tracked by git; "
                            "`git rm --cached` it (covered by .gitignore)",
                )
