"""Whole-program project model: symbol table, class hierarchy, call graph.

Everything the ``--whole-program`` rule families (EXC / RES / CONC) need
is computed here, once per lint run, from a single ``ast.parse`` pass over
``src/repro``. Pure stdlib — the model must build on a bare interpreter
(CI's lint jobs install nothing), so resolution is purely syntactic:

* **Symbol table** — every module, class, function (including nested
  functions and lambdas, which get synthetic qualnames) keyed by dotted
  qualname, plus per-module import maps.
* **Import resolution** — ``import a.b as c`` / ``from a import b`` /
  relative imports, package ``__init__`` re-exports, and the PEP 562
  lazy-export idiom (a module-level ``__getattr__`` makes ``repro.x``
  resolve into the ``repro.x`` submodule even though nothing is imported
  eagerly).
* **Class hierarchy** — project classes resolve their written bases;
  builtin exception classes use the real interpreter MRO, so
  ``is_subtype("repro.service.schemas.BadRequestError", "Exception")``
  holds through the project/builtin boundary.
* **Call graph** — per-function outgoing edges with several resolution
  strategies (documented on :meth:`ProjectModel._resolve_call`):
  direct names, ``self.``/typed-receiver methods, dynamic-dispatch
  fallback on unknown receivers, ``functools.partial``, and one level of
  higher-order resolution (a function reference passed as an argument to
  a project function that calls that parameter). Function references
  passed to *external* callables (``Thread(target=...)``,
  ``loop.run_in_executor``, ``asyncio.start_server``) become ``ref``
  edges: they never carry exception flow, but they do carry
  thread-reachability for the CONC family.

The model is deliberately optimistic about code it cannot see: calls into
the stdlib or numpy contribute no exceptions and no blocking behaviour.
The whole-program rules therefore prove properties of *declared* project
behaviour, not of the interpreter — see docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.registry import dotted_name

#: Mirrors engine.SKIP_DIRS (not imported to avoid a cycle at import time).
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis",
    "build", "dist", "telemetry",
})

#: External constructors whose result type we track on locals/attributes,
#: so ``pool.submit`` can be told apart from a thread-pool submit and a
#: ``seg.close()`` can be tied back to a shared-memory segment.
TRACKED_EXTERNAL_TYPES = frozenset({
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.shared_memory.SharedMemory",
    "tempfile.TemporaryDirectory",
    "threading.Thread",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "socket.socket",
})

#: Shorthand dotted spellings normalised to the canonical external name.
_EXTERNAL_ALIASES = {
    "futures.ThreadPoolExecutor": "concurrent.futures.ThreadPoolExecutor",
    "futures.ProcessPoolExecutor": "concurrent.futures.ProcessPoolExecutor",
    "shared_memory.SharedMemory": "multiprocessing.shared_memory.SharedMemory",
}

#: Dynamic-dispatch fallback gives up beyond this many same-named methods:
#: a name like ``get`` or ``close`` would otherwise connect everything to
#: everything and drown the exception-flow fixpoint in noise.
DYNAMIC_DISPATCH_CAP = 8

#: Method names that builtin containers and strings also spell. A ``.get()``
#: or ``.update()`` on an *untyped* receiver is overwhelmingly a dict, not a
#: project class, so the dynamic-dispatch fallback never fires for these —
#: typed receivers (annotations, constructor assigns) still resolve exactly.
AMBIENT_METHOD_NAMES = frozenset(
    name
    for typ in (dict, list, set, frozenset, tuple, str, bytes, bytearray)
    for name in dir(typ)
    if not name.startswith("_")
)


def _normalize_external(name: str) -> str:
    return _EXTERNAL_ALIASES.get(name, name)


def _scrape_lazy_exports(node: ast.Dict) -> dict[str, str]:
    """``name -> "module.attr"`` from a ``{"X": ("pkg.mod", "X")}`` literal."""
    out: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        if not (isinstance(value, ast.Tuple) and len(value.elts) == 2
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str) for e in value.elts)):
            continue
        modname, attr = (e.value for e in value.elts)
        out[key.value] = f"{modname}.{attr}"
    return out


# --------------------------------------------------------------------------
# dataclasses


@dataclass
class CallEdge:
    """One resolved outgoing call (or reference) from a function."""

    callee: str            # qualname of a project function
    line: int
    kind: str              # "call" | "dynamic" | "partial" | "higher-order"
    #                      # | "ref" | "spawn-thread" | "spawn-process"


@dataclass
class ParamCall:
    """``fn(...)`` where ``fn`` is a parameter of an enclosing function."""

    owner: str             # qualname of the function declaring the parameter
    param: str
    site: str              # qualname of the innermost function making the call
    line: int


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    relpath: str
    node: ast.AST                      # FunctionDef | AsyncFunctionDef | Lambda
    name: str                          # simple name; lambdas get "<lambda@N>"
    is_async: bool = False
    cls: str | None = None             # owning class qualname, if a method
    params: tuple[str, ...] = ()
    parent: str | None = None          # enclosing function qualname, if nested
    edges: list[CallEdge] = field(default_factory=list)
    param_calls: list[ParamCall] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    relpath: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()        # resolved: project qualname or builtin
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)  # self.x ctor type


@dataclass
class ModuleInfo:
    name: str                          # dotted module name ("repro.parallel")
    relpath: str
    source: str
    tree: ast.Module
    is_package: bool = False
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)   # name -> qualname
    classes: dict[str, str] = field(default_factory=dict)     # name -> qualname
    assigns: dict[str, ast.expr] = field(default_factory=dict)
    assign_types: dict[str, str] = field(default_factory=dict)
    has_getattr: bool = False          # PEP 562 module-level __getattr__
    #: name -> "module.attr" scraped from `_LAZY_EXPORTS`-style dict literals
    #: ({"Name": ("pkg.mod", "Name")}), the repo's PEP 562 idiom.
    lazy_exports: dict[str, str] = field(default_factory=dict)


# --------------------------------------------------------------------------
# model


class ProjectModel:
    """Symbol table + class hierarchy + call graph over one package tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.method_index: dict[str, list[str]] = {}   # simple name -> quals
        self.errors: list[tuple[str, str]] = []        # (relpath, message)
        # (callee qual, arg pos, kwarg name, target qual, source qual, line)
        self._pending_bindings: list[
            tuple[str, int | None, str | None, str, str, int]] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, root: Path, package_dir: str = "src/repro",
              package_name: str | None = None) -> "ProjectModel":
        """Parse every module under ``root/package_dir`` and link the graph."""
        model = cls()
        base = (root / package_dir).resolve()
        if package_name is None:
            package_name = base.name
        files = sorted(p for p in base.rglob("*.py")
                       if not _SKIP_DIRS.intersection(p.parts))
        for path in files:
            rel = path.relative_to(base)
            parts = (package_name, *rel.with_suffix("").parts)
            is_package = parts[-1] == "__init__"
            if is_package:
                parts = parts[:-1]
            modname = ".".join(parts)
            relpath = (Path(package_dir) / rel).as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, UnicodeDecodeError, SyntaxError, ValueError) as exc:
                model.errors.append((relpath, str(exc)))
                continue
            model._index_module(modname, relpath, source, tree, is_package)
        model._link()
        return model

    def _index_module(self, modname: str, relpath: str, source: str,
                      tree: ast.Module, is_package: bool) -> None:
        mod = ModuleInfo(name=modname, relpath=relpath, source=source,
                         tree=tree, is_package=is_package)
        self.modules[modname] = mod
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = self._resolve_from_base(mod, stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        mod.assigns[tgt.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    mod.assigns[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__":
                mod.has_getattr = True
        for value in mod.assigns.values():
            if isinstance(value, ast.Dict):
                mod.lazy_exports.update(_scrape_lazy_exports(value))
        self._index_scope(mod, tree.body, prefix=modname, cls=None, parent=None)

    def _resolve_from_base(self, mod: ModuleInfo, stmt: ast.ImportFrom) -> str:
        if not stmt.level:
            return stmt.module or ""
        parts = mod.name.split(".")
        if not mod.is_package:
            parts = parts[:-1]
        parts = parts[:len(parts) - (stmt.level - 1)] if stmt.level > 1 else parts
        base = ".".join(parts)
        if stmt.module:
            base = f"{base}.{stmt.module}" if base else stmt.module
        return base

    def _index_scope(self, mod: ModuleInfo, body: Iterable[ast.stmt], *,
                     prefix: str, cls: str | None, parent: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qualname=qual, module=mod.name, relpath=mod.relpath,
                    node=stmt, name=stmt.name,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    cls=cls, params=_param_names(stmt.args), parent=parent,
                )
                self.functions[qual] = info
                if cls is None and parent is None:
                    mod.functions[stmt.name] = qual
                if cls is not None and parent is None:
                    self.classes[cls].methods[stmt.name] = qual
                    self.method_index.setdefault(stmt.name, []).append(qual)
                self._index_scope(mod, stmt.body, prefix=qual, cls=None,
                                  parent=qual)
                self._index_lambdas(mod, stmt, prefix=qual, parent=qual)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}"
                self.classes[qual] = ClassInfo(
                    qualname=qual, module=mod.name, relpath=mod.relpath,
                    node=stmt,
                    bases=tuple(n for n in map(dotted_name, stmt.bases) if n),
                )
                if parent is None:
                    mod.classes[stmt.name] = qual
                self._index_scope(mod, stmt.body, prefix=qual, cls=qual,
                                  parent=parent)
            else:
                self._index_lambdas(mod, stmt, prefix=prefix, parent=parent)

    def _index_lambdas(self, mod: ModuleInfo, node: ast.AST, *,
                       prefix: str, parent: str | None) -> None:
        """Give every lambda in the *expressions* of ``node`` a qualname."""
        for child in _walk_expressions(node):
            if isinstance(child, ast.Lambda):
                qual = f"{prefix}.<lambda@{child.lineno}>"
                while qual in self.functions:   # two lambdas on one line
                    qual += "'"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=mod.name, relpath=mod.relpath,
                    node=child, name=f"<lambda@{child.lineno}>",
                    params=_param_names(child.args), parent=parent,
                )

    # -- linking -----------------------------------------------------------

    def _link(self) -> None:
        for cinfo in self.classes.values():
            mod = self.modules[cinfo.module]
            cinfo.bases = tuple(
                self.resolve_class(mod, b) or b for b in cinfo.bases)
        # attribute types first: _resolve_method / _spawn_kind consult them
        for cinfo in self.classes.values():
            self._collect_attr_types(cinfo)
        for finfo in list(self.functions.values()):
            self._scan_function(finfo)
        self._bind_higher_order()

    def _collect_attr_types(self, cinfo: ClassInfo) -> None:
        mod = self.modules[cinfo.module]
        # class-body field annotations (dataclass fields and the like)
        for stmt in cinfo.node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                typ = self.annotated_type(mod, stmt.annotation)
                if typ is not None:
                    cinfo.attr_types[stmt.target.id] = typ
        for meth_qual in cinfo.methods.values():
            fn = self.functions[meth_qual]
            for node in ast.walk(fn.node):
                if (isinstance(node, ast.Assign) and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and isinstance(node.value, ast.Call)):
                    typ = self.constructed_type(mod, node.value)
                    if typ is not None:
                        cinfo.attr_types[node.targets[0].attr] = typ
                elif (isinstance(node, ast.AnnAssign)
                        and isinstance(node.target, ast.Attribute)
                        and isinstance(node.target.value, ast.Name)
                        and node.target.value.id == "self"):
                    typ = None
                    if isinstance(node.value, ast.Call):
                        typ = self.constructed_type(mod, node.value)
                    if typ is None:
                        typ = self.annotated_type(mod, node.annotation)
                    if typ is not None:
                        cinfo.attr_types[node.target.attr] = typ

    # -- symbol resolution -------------------------------------------------

    def expand_name(self, mod: ModuleInfo, dotted: str) -> str:
        """Expand the leading import alias of ``dotted`` to a canonical name.

        Works for both project and external symbols: ``Lock`` under
        ``from threading import Lock`` expands to ``threading.Lock``;
        ``obs.span`` under ``from repro import obs`` to ``repro.obs.span``.
        """
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head)
        if target is None:
            return _normalize_external(dotted)
        full = f"{target}.{rest}" if rest else target
        return _normalize_external(full)

    def resolve_function(self, mod: ModuleInfo, dotted: str) -> str | None:
        """Resolve a dotted name in ``mod``'s namespace to a function qualname."""
        head, _, rest = dotted.partition(".")
        if not rest and head in mod.functions:
            return mod.functions[head]
        if not rest and head in mod.imports:
            return self._resolve_qual_function(mod.imports[head])
        if rest and head in mod.classes:          # ClassName.method
            cinfo = self.classes[mod.classes[head]]
            return cinfo.methods.get(rest)
        if head in mod.imports:
            return self._resolve_qual_function(f"{mod.imports[head]}.{rest}")
        if head in self.modules:                   # absolute dotted spelling
            return self._resolve_qual_function(dotted)
        return None

    def resolve_class(self, mod: ModuleInfo, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        if not rest and head in mod.classes:
            return mod.classes[head]
        if head in mod.imports:
            full = f"{mod.imports[head]}.{rest}" if rest else mod.imports[head]
            return self._resolve_qual_class(full)
        if head in self.modules:
            return self._resolve_qual_class(dotted)
        return None

    def _split_module(self, qual: str) -> tuple[ModuleInfo, str] | None:
        """Longest-prefix match of ``qual`` against known modules."""
        parts = qual.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return self.modules[prefix], ".".join(parts[i:])
        return None

    def _resolve_qual_function(self, qual: str, _depth: int = 0) -> str | None:
        if _depth > 8:
            return None
        if qual in self.functions:
            fn = self.functions[qual]
            if fn.parent is None:          # only directly addressable defs
                return qual
        hit = self._split_module(qual)
        if hit is None:
            return None
        mod, attr = hit
        if not attr:
            return None
        head, _, rest = attr.partition(".")
        if head in mod.functions and not rest:
            return mod.functions[head]
        if head in mod.classes:
            cinfo = self.classes[mod.classes[head]]
            return cinfo.methods.get(rest) if rest else None
        if head in mod.imports:            # package __init__ re-export
            full = f"{mod.imports[head]}.{rest}" if rest else mod.imports[head]
            return self._resolve_qual_function(full, _depth + 1)
        if mod.has_getattr:                # PEP 562: lazy exports
            if head in mod.lazy_exports:   # {"X": ("pkg.mod", "X")} idiom
                target = mod.lazy_exports[head]
                full = f"{target}.{rest}" if rest else target
                return self._resolve_qual_function(full, _depth + 1)
            lazy = f"{mod.name}.{head}"    # lazily imported submodule
            if lazy in self.modules:
                full = f"{lazy}.{rest}" if rest else lazy
                return self._resolve_qual_function(full, _depth + 1)
        return None

    def _resolve_qual_class(self, qual: str, _depth: int = 0) -> str | None:
        if _depth > 8:
            return None
        if qual in self.classes:
            return qual
        hit = self._split_module(qual)
        if hit is None:
            return None
        mod, attr = hit
        head, _, rest = attr.partition(".")
        if head in mod.classes and not rest:
            return mod.classes[head]
        if head in mod.imports:
            full = f"{mod.imports[head]}.{rest}" if rest else mod.imports[head]
            return self._resolve_qual_class(full, _depth + 1)
        if mod.has_getattr:
            if head in mod.lazy_exports:
                target = mod.lazy_exports[head]
                full = f"{target}.{rest}" if rest else target
                return self._resolve_qual_class(full, _depth + 1)
            lazy = f"{mod.name}.{head}"
            if lazy in self.modules:
                full = f"{lazy}.{rest}" if rest else lazy
                return self._resolve_qual_class(full, _depth + 1)
        return None

    # -- class hierarchy ---------------------------------------------------

    def mro_names(self, type_name: str) -> list[str]:
        """Ancestry of a type (project qualname or builtin name), inclusive."""
        out, seen, queue = [], set(), [type_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            out.append(name)
            if name in self.classes:
                queue.extend(self.classes[name].bases)
            else:
                base = name.rpartition(".")[2]
                obj = getattr(builtins, base, None)
                if isinstance(obj, type):
                    queue.extend(b.__name__ for b in obj.__mro__[1:]
                                 if b is not object)
        return out

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Whether ``sub`` is ``sup`` or inherits from it.

        Both names are either project qualnames or bare builtin names —
        :meth:`mro_names` normalises builtin ancestors to bare names, so a
        plain membership check covers both sides of the boundary.
        """
        return sup in self.mro_names(sub)

    # -- type tracking -----------------------------------------------------

    def constructed_type(self, mod: ModuleInfo, call: ast.Call) -> str | None:
        """Type name a constructor-looking call produces, if we track it."""
        name = dotted_name(call.func)
        if name is None:
            return None
        qual = self.resolve_class(mod, name)
        if qual is not None:
            return qual
        expanded = self.expand_name(mod, name)
        if expanded in TRACKED_EXTERNAL_TYPES:
            return expanded
        return None

    def annotated_type(self, mod: ModuleInfo, node: ast.expr) -> str | None:
        """Type name an annotation expression denotes, if we track it.

        Handles plain names (``BlobStore``), dotted names, string
        annotations, and ``T | None`` unions (the non-None arm). Generics
        and anything fancier resolve to ``None`` — untyped, not wrong.
        """
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self.annotated_type(mod, node.left)
                    or self.annotated_type(mod, node.right))
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                name = node.value.strip()
            else:
                return None
        else:
            name = dotted_name(node)
        if not name:
            return None
        qual = self.resolve_class(mod, name)
        if qual is not None:
            return qual
        expanded = self.expand_name(mod, name)
        if expanded in TRACKED_EXTERNAL_TYPES:
            return expanded
        return None

    def local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """``name -> type`` for parameters and simple assigns in ``fn``.

        Parameter annotations seed the map; ``x = Ctor(...)`` and
        ``x: T = ...`` statements in the body then refine or add to it.
        """
        mod = self.modules[fn.module]
        out: dict[str, str] = {}
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                typ = self.annotated_type(mod, arg.annotation)
                if typ is not None:
                    out[arg.arg] = typ
        for node in ast.walk(fn.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                typ = self.constructed_type(mod, node.value)
                if typ is not None:
                    out[node.targets[0].id] = typ
            elif (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)):
                typ = None
                if isinstance(node.value, ast.Call):
                    typ = self.constructed_type(mod, node.value)
                if typ is None:
                    typ = self.annotated_type(mod, node.annotation)
                if typ is not None:
                    out[node.target.id] = typ
        return out

    def receiver_type(self, fn: FunctionInfo, expr: ast.expr) -> str | None:
        """Best-effort static type of a call receiver expression."""
        if isinstance(expr, ast.Name):
            return self.local_types(fn).get(expr.id)
        if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and fn.cls is not None):
            return self.classes[fn.cls].attr_types.get(expr.attr)
        return None

    # -- call graph construction -------------------------------------------

    def _scan_function(self, fn: FunctionInfo) -> None:
        mod = self.modules[fn.module]
        locals_map = self.local_types(fn)
        for call in _own_calls(fn.node):
            self._resolve_call(fn, mod, call, locals_map)

    def _enclosing_params(self, fn: FunctionInfo) -> Iterator[tuple[str, str]]:
        """(owner qualname, param name) for fn and its lexical ancestors."""
        cur: FunctionInfo | None = fn
        while cur is not None:
            for p in cur.params:
                yield cur.qualname, p
            cur = self.functions.get(cur.parent) if cur.parent else None

    def _resolve_call(self, fn: FunctionInfo, mod: ModuleInfo,
                      call: ast.Call, locals_map: dict[str, str]) -> None:
        name = dotted_name(call.func)
        line = call.lineno
        resolved: str | None = None
        if name is not None:
            # functools.partial(f, ...) -> an eventual call to f
            if self.expand_name(mod, name) == "functools.partial" and call.args:
                target = dotted_name(call.args[0])
                if target is not None:
                    tq = self._resolve_ref(fn, mod, target)
                    if tq is not None:
                        fn.edges.append(CallEdge(tq, line, "partial"))
                self._scan_ref_args(fn, mod, call, skip_first=True)
                return
            # parameter of this or an enclosing function (closure)
            if "." not in name:
                for owner, param in self._enclosing_params(fn):
                    if param == name:
                        fn.param_calls.append(ParamCall(
                            owner=owner, param=param,
                            site=fn.qualname, line=line))
                        self._scan_ref_args(fn, mod, call)
                        return
            # self.method() and typed-receiver method calls
            if "." in name:
                recv, _, meth = name.rpartition(".")
                resolved = self._resolve_method(fn, mod, recv, meth,
                                                locals_map)
                if resolved is not None:
                    fn.edges.append(CallEdge(resolved, line, "call"))
                elif (recv not in ("self",) and meth in self.method_index
                        and meth not in AMBIENT_METHOD_NAMES):
                    cands = self.method_index[meth]
                    if len(cands) <= DYNAMIC_DISPATCH_CAP:
                        for cand in cands:
                            fn.edges.append(CallEdge(cand, line, "dynamic"))
                        resolved = cands[0]
            if resolved is None:
                target = self.resolve_function(mod, name)
                if target is not None:
                    fn.edges.append(CallEdge(target, line, "call"))
                    resolved = target
                else:
                    cq = self.resolve_class(mod, name)
                    if cq is not None:        # constructor -> __init__
                        init = self._find_method(cq, "__init__")
                        if init is not None:
                            fn.edges.append(CallEdge(init, line, "call"))
                        resolved = cq
        self._scan_ref_args(fn, mod, call)

    def _resolve_method(self, fn: FunctionInfo, mod: ModuleInfo, recv: str,
                        meth: str, locals_map: dict[str, str]) -> str | None:
        cls_qual: str | None = None
        if recv == "self" and fn.cls is not None:
            cls_qual = fn.cls
        elif "." not in recv and recv in locals_map:
            cls_qual = locals_map[recv]
        elif recv.startswith("self.") and fn.cls is not None:
            attr = recv.split(".", 1)[1]
            cls_qual = self.classes[fn.cls].attr_types.get(attr)
        if cls_qual is None or cls_qual not in self.classes:
            return None
        return self._find_method(cls_qual, meth)

    def _find_method(self, cls_qual: str, meth: str) -> str | None:
        for name in self.mro_names(cls_qual):
            cinfo = self.classes.get(name)
            if cinfo is not None and meth in cinfo.methods:
                return cinfo.methods[meth]
        return None

    def _resolve_ref(self, fn: FunctionInfo, mod: ModuleInfo,
                     dotted: str) -> str | None:
        """Resolve a *function reference* (not a call) to a qualname."""
        if "." not in dotted:
            # lexical scope first: nested defs of this function and ancestors
            scope: FunctionInfo | None = fn
            while scope is not None:
                nested = f"{scope.qualname}.{dotted}"
                if nested in self.functions:
                    return nested
                scope = (self.functions.get(scope.parent)
                         if scope.parent else None)
        target = self.resolve_function(mod, dotted)
        if target is not None:
            return target
        if "." in dotted:
            recv, _, meth = dotted.rpartition(".")
            hit = self._resolve_method(fn, mod, recv, meth,
                                       self.local_types(fn))
            if hit is not None:
                return hit
            if meth in self.method_index:
                cands = self.method_index[meth]
                if len(cands) == 1:
                    return cands[0]
        return None

    def _spawn_kind(self, fn: FunctionInfo, mod: ModuleInfo,
                    call: ast.Call) -> str:
        """Classify a call as a thread spawn, process spawn, or plain ref."""
        name = dotted_name(call.func)
        if name is None:
            return "ref"
        expanded = self.expand_name(mod, name)
        if expanded in ("threading.Thread", "threading.Timer"):
            return "spawn-thread"
        if name.endswith(".run_in_executor"):
            return "spawn-thread"
        if name.endswith((".submit", ".map")) and "." in name:
            recv = name.rpartition(".")[0]
            rtype = None
            if recv == "self" or recv.startswith("self."):
                attr = recv.split(".", 1)[1] if "." in recv else None
                if attr and fn.cls is not None:
                    rtype = self.classes[fn.cls].attr_types.get(attr)
            else:
                rtype = self.local_types(fn).get(recv.partition(".")[0])
            if rtype == "concurrent.futures.ProcessPoolExecutor":
                return "spawn-process"
            if rtype == "concurrent.futures.ThreadPoolExecutor":
                return "spawn-thread"
            return "spawn-thread" if rtype is None else "ref"
        return "ref"

    def _scan_ref_args(self, fn: FunctionInfo, mod: ModuleInfo,
                       call: ast.Call, *, skip_first: bool = False) -> None:
        """Record function references passed as arguments.

        A reference passed to a *project* function that calls the matching
        parameter becomes a ``higher-order`` call edge from each call site
        of that parameter (bound in :meth:`_bind_higher_order`). Any other
        reference becomes a ``ref``/``spawn-*`` edge used only for
        reachability.
        """
        callee_name = dotted_name(call.func)
        callee_qual = (self._resolve_ref(fn, mod, callee_name)
                       if callee_name else None)
        spawn = self._spawn_kind(fn, mod, call)
        args = list(call.args)
        if skip_first and args:
            args = args[1:]
        for idx, arg in enumerate(args):
            self._record_ref(fn, mod, call, callee_qual, spawn, arg,
                             pos=idx, kw=None)
        for kw in call.keywords:
            if kw.arg is not None:
                self._record_ref(fn, mod, call, callee_qual, spawn, kw.value,
                                 pos=None, kw=kw.arg)

    def _record_ref(self, fn: FunctionInfo, mod: ModuleInfo, call: ast.Call,
                    callee_qual: str | None, spawn: str, arg: ast.expr, *,
                    pos: int | None, kw: str | None) -> None:
        if isinstance(arg, ast.Lambda):
            target = self._lambda_qual(fn, arg)
        else:
            name = dotted_name(arg)
            if name is None:
                return
            target = self._resolve_ref(fn, mod, name)
        if target is None:
            return
        if callee_qual is not None and callee_qual in self.functions:
            self._pending_bindings.append(
                (callee_qual, pos, kw, target, fn.qualname, call.lineno))
        fn.edges.append(CallEdge(target, call.lineno, spawn))

    def _lambda_qual(self, fn: FunctionInfo, node: ast.Lambda) -> str | None:
        for qual, info in self.functions.items():
            if info.node is node:
                return qual
        return None

    def _bind_higher_order(self) -> None:
        """Turn ``g(f)`` + ``fn_param(...)`` inside g into call edges."""
        pc_by_owner: dict[str, list[ParamCall]] = {}
        for info in self.functions.values():
            for pc in info.param_calls:
                pc_by_owner.setdefault(pc.owner, []).append(pc)
        for (owner, pos, kw, target, _src, line) in self._pending_bindings:
            owner_fn = self.functions.get(owner)
            if owner_fn is None:
                continue
            params = list(owner_fn.params)
            if owner_fn.cls is not None and params and params[0] in ("self",
                                                                    "cls"):
                params = params[1:]
            param: str | None = None
            if kw is not None:
                param = kw if kw in params else None
            elif pos is not None and pos < len(params):
                param = params[pos]
            if param is None:
                continue
            for pc in pc_by_owner.get(owner, ()):
                if pc.param == param:
                    site = self.functions[pc.site]
                    site.edges.append(
                        CallEdge(target, pc.line, "higher-order"))

    # -- traversal helpers -------------------------------------------------

    def callees(self, qual: str,
                kinds: tuple[str, ...] = ("call", "dynamic", "partial",
                                          "higher-order")) -> Iterator[CallEdge]:
        fn = self.functions.get(qual)
        if fn is None:
            return
        for edge in fn.edges:
            if edge.kind in kinds:
                yield edge

    def reachable(self, roots: Iterable[str], *,
                  kinds: tuple[str, ...] = ("call", "dynamic", "partial",
                                            "higher-order", "ref",
                                            "spawn-thread")) -> set[str]:
        """Transitive closure over the given edge kinds, parents included.

        A nested function's lexical parent is *not* auto-included, but a
        reachable nested function does expose its parent's higher-order
        edges (they were recorded on the site function already), so no
        special casing is needed here.
        """
        seen: set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for edge in self.functions[qual].edges:
                if edge.kind in kinds and edge.callee not in seen:
                    queue.append(edge.callee)
        return seen


# --------------------------------------------------------------------------
# AST helpers


def _param_names(args: ast.arguments) -> tuple[str, ...]:
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _walk_expressions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested def/class *bodies*."""
    stack = [node]
    first = True
    while stack:
        cur = stack.pop()
        if not first and isinstance(cur, (ast.FunctionDef,
                                          ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        first = False
        yield cur
        stack.extend(ast.iter_child_nodes(cur))


def _own_calls(fn_node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes belonging to this function, excluding nested defs/lambdas.

    Lambdas are their own FunctionInfo, so their calls are attributed to
    the lambda, not the enclosing function.
    """
    if isinstance(fn_node, ast.Lambda):
        roots: list[ast.AST] = [fn_node.body]
    else:
        roots = list(fn_node.body)
    stack: list[ast.AST] = list(roots)
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(ast.iter_child_nodes(cur))


__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ParamCall",
    "ProjectModel",
    "AMBIENT_METHOD_NAMES",
    "DYNAMIC_DISPATCH_CAP",
    "TRACKED_EXTERNAL_TYPES",
]
