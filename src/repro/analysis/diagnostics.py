"""Diagnostic records emitted by lint rules.

A :class:`Diagnostic` is one finding: a rule id, a location, and a
message. Diagnostics are plain data — reporters decide how to render
them and the engine decides which ones survive suppression.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Severity levels, mildest first. ``error`` is the only level that makes
#: the CLI exit non-zero; ``warning`` exists for rules being trialled.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding at a specific source location."""

    rule_id: str
    family: str
    path: str            # repo-relative posix path (or the path as given)
    line: int            # 1-based
    col: int             # 0-based, matching ast.col_offset
    message: str
    severity: str = "error"
    suppressed: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


__all__ = ["Diagnostic", "SEVERITIES"]
