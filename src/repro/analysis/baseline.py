"""Committed baseline for known-unproven whole-program findings.

The EXC family can hit edges it cannot prove statically — the canonical
example is ``raise type(worker_exc)(...)``, which deliberately re-raises
the worker's original exception class. Those findings are real but
accepted: they live in a reviewed, committed JSON file instead of inline
suppressions, so the set of unproven edges is visible in one place and
every entry carries a justification.

Format (``lint-baseline.json`` at the repo root, version 1)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "EXC-002",
          "path": "src/repro/service/handlers.py",
          "symbol": "repro.service.handlers.do_compress",
          "contains": "repro.parallel._finalize",
          "reason": "strict-mode re-raise preserves the original class"
        }
      ]
    }

Matching is deliberately line-number-free: an entry matches a diagnostic
when the rule id and path are equal and both ``symbol`` and ``contains``
occur in the message. Whole-program messages always lead with the
qualified symbol they are attached to, so entries survive unrelated
edits. A ``reason`` is mandatory — an unexplained baseline entry is just
a suppression with worse ergonomics.

Entries that match nothing are *stale* and reported as warning-severity
``BAS-001`` diagnostics, so the baseline shrinks as edges get proven.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

BASELINE_VERSION = 1

#: Default filename looked for next to pyproject.toml.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    reason: str
    contains: str = ""

    def matches(self, diag: Diagnostic) -> bool:
        return (diag.rule_id == self.rule
                and diag.path == self.path
                and self.symbol in diag.message
                and self.contains in diag.message)


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)
    source: str = ""                      # where it was loaded from, for msgs
    _used: set[int] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) \
                or payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: expected a JSON object with "
                f'"version": {BASELINE_VERSION}')
        entries = []
        for i, raw in enumerate(payload.get("entries", [])):
            if not isinstance(raw, dict):
                raise ValueError(f"baseline {path}: entry {i} is not an object")
            missing = {"rule", "path", "symbol", "reason"} - raw.keys()
            if missing:
                raise ValueError(
                    f"baseline {path}: entry {i} is missing "
                    f"{', '.join(sorted(missing))} (a reason is mandatory: "
                    "unexplained entries are indistinguishable from "
                    "unreviewed suppressions)")
            if not str(raw["reason"]).strip():
                raise ValueError(f"baseline {path}: entry {i} has an empty "
                                 "reason")
            entries.append(BaselineEntry(
                rule=str(raw["rule"]), path=str(raw["path"]),
                symbol=str(raw["symbol"]), reason=str(raw["reason"]),
                contains=str(raw.get("contains", "")),
            ))
        return cls(entries=entries, source=str(path))

    def absorbs(self, diag: Diagnostic) -> bool:
        """True when some entry matches ``diag`` (and mark that entry used)."""
        hit = False
        for i, entry in enumerate(self.entries):
            if entry.matches(diag):
                self._used.add(i)
                hit = True
        return hit

    def stale_entries(self) -> list[BaselineEntry]:
        return [e for i, e in enumerate(self.entries) if i not in self._used]


def stale_diagnostics(baseline: Baseline) -> list[Diagnostic]:
    """BAS-001 warnings for entries that no longer match any finding."""
    out = []
    for entry in baseline.stale_entries():
        out.append(Diagnostic(
            rule_id="BAS-001", family="baseline", path=entry.path,
            line=1, col=0, severity="warning",
            message=(f"stale baseline entry ({entry.rule} / {entry.symbol}): "
                     "no current finding matches it; delete it from "
                     f"{baseline.source or DEFAULT_BASELINE_NAME}"),
        ))
    return out


__all__ = ["Baseline", "BaselineEntry", "BASELINE_VERSION",
           "DEFAULT_BASELINE_NAME", "stale_diagnostics"]
