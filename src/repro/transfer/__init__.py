"""WAN transfer simulation (the paper's Globus experiment substrate)."""

from repro.transfer.events import EventQueue, SharedResource, simulate_shared_link
from repro.transfer.globus import (
    PAPER_SPEEDS,
    ThroughputModel,
    TransferResult,
    simulate_globus,
)
from repro.faults import LinkFaults
from repro.transfer.network import WanLink, fair_share_completions, fair_share_stats

__all__ = [
    "WanLink",
    "LinkFaults",
    "fair_share_completions",
    "fair_share_stats",
    "ThroughputModel",
    "PAPER_SPEEDS",
    "TransferResult",
    "simulate_globus",
    "EventQueue",
    "SharedResource",
    "simulate_shared_link",
]
