"""WAN transfer simulation (the paper's Globus experiment substrate)."""

from repro.transfer.events import EventQueue, SharedResource, simulate_shared_link
from repro.transfer.globus import (
    PAPER_SPEEDS,
    ThroughputModel,
    TransferResult,
    simulate_globus,
)
from repro.transfer.network import WanLink, fair_share_completions

__all__ = [
    "WanLink",
    "fair_share_completions",
    "ThroughputModel",
    "PAPER_SPEEDS",
    "TransferResult",
    "simulate_globus",
    "EventQueue",
    "SharedResource",
    "simulate_shared_link",
]
