"""Shared-bandwidth WAN link model (processor sharing) with link faults.

A wide-area link carrying many concurrent Globus transfers is modelled as
an egalitarian processor-sharing server: the aggregate bandwidth ``B`` is
split equally among active flows, re-divided at every arrival/completion.
The event loop below computes exact completion times for arbitrary arrival
schedules in O(n^2) worst case (n = number of files, <= a few thousand
here).

Fault modelling (:class:`repro.faults.LinkFaults`): the link can carry
**outage windows** — intervals where the effective bandwidth is zero and
in-flight flows stall — and a per-delivery **drop probability**: a flow
that finishes transmitting may be found corrupt on arrival and must be
retransmitted from scratch after a bounded exponential backoff, up to
``max_attempts`` tries. Drop decisions are deterministic in
``(seed, flow, attempt)``, so a seeded simulation reproduces identical
retransmit counts and completion times. Retransmit/goodput/outage stats
are returned by :func:`fair_share_stats` and mirrored into ``wan.*``
metrics when an observability run is active.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.faults import LinkFaults

__all__ = ["WanLink", "fair_share_completions", "fair_share_stats"]

#: Queue-depth histogram edges (flows in flight on the shared link).
QUEUE_DEPTH_BUCKETS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096]

#: Relative completion tolerance scale. Module-level so the regression
#: test for the progress guard can monkeypatch it (a negative scale makes
#: normal completion impossible, forcing the guard on every flow).
_FINISH_TOL_SCALE = 1e-9


@dataclass(frozen=True)
class WanLink:
    """A WAN path with aggregate bandwidth and per-flow startup latency."""

    bandwidth: float  # bytes/second shared by all active flows
    latency: float = 0.5  # seconds of per-file setup (Globus handshake)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


def fair_share_completions(arrivals: np.ndarray, sizes: np.ndarray,
                           link: WanLink, *,
                           faults: LinkFaults | None = None) -> np.ndarray:
    """Completion time of each flow under equal-share bandwidth.

    ``arrivals`` are the times flows hit the link (latency is added here);
    ``sizes`` are payload bytes. Returns per-flow completion times.
    ``faults`` adds outage windows and drop/retransmit behaviour.
    """
    done, _ = fair_share_stats(arrivals, sizes, link, faults=faults)
    return done


def fair_share_stats(arrivals: np.ndarray, sizes: np.ndarray, link: WanLink,
                     *, faults: LinkFaults | None = None
                     ) -> tuple[np.ndarray, dict]:
    """Like :func:`fair_share_completions`, plus a stats dict.

    Stats keys: ``retransmits``, ``dropped_bytes``, ``drops_exhausted``,
    ``outage_time``, ``forced_completions``, ``goodput`` (useful bytes /
    total bytes transmitted, 1.0 when nothing was retransmitted).
    """
    arrivals = np.asarray(arrivals, dtype=np.float64) + link.latency
    sizes = np.asarray(sizes, dtype=np.float64)
    if arrivals.shape != sizes.shape:
        raise ValueError("arrivals and sizes must align")
    n = arrivals.size
    done = np.zeros(n)
    stats = {"retransmits": 0, "dropped_bytes": 0.0, "drops_exhausted": 0,
             "outage_time": 0.0, "forced_completions": 0, "goodput": 1.0}
    if n == 0:
        return done, stats
    with obs.span("wan.fair_share", n_flows=int(n), bandwidth=link.bandwidth,
                  faulty=faults is not None):
        done = _fair_share_loop(arrivals, sizes, link, done, faults, stats)
    total_sent = float(sizes.sum()) + stats["dropped_bytes"]
    stats["goodput"] = float(sizes.sum()) / total_sent if total_sent > 0 else 1.0
    if obs.get_run() is not None:
        obs.inc_counter("wan.bytes_sent", int(total_sent))
        # live view: simulated bytes as a real-time EWMA rate (how fast
        # the simulation itself is chewing through traffic), and per-flow
        # simulated completion latency quantiles on /metrics
        obs.mark_rate("wan.bytes_sent", total_sent)
        for i in range(n):
            obs.observe_latency("wan.flow", float(done[i] - arrivals[i]))
        if stats["retransmits"]:
            obs.inc_counter("wan.retransmits", stats["retransmits"])
            obs.inc_counter("wan.dropped_bytes", int(stats["dropped_bytes"]))
        if stats["drops_exhausted"]:
            obs.inc_counter("wan.drops_exhausted", stats["drops_exhausted"])
        obs.set_gauge("wan.goodput", stats["goodput"])
        if stats["outage_time"] > 0:
            obs.set_gauge("wan.outage_time", stats["outage_time"])
    return done, stats


def _next_outage(outages: tuple[tuple[float, float], ...],
                 t: float) -> tuple[float, float]:
    """(end of the outage covering ``t`` or -inf, start of the next one)."""
    current_end = -np.inf
    next_start = np.inf
    for start, end in outages:
        if start <= t + 1e-12 and t < end - 1e-12:
            current_end = max(current_end, end)
        elif start > t + 1e-12:
            next_start = min(next_start, start)
    return current_end, next_start


def _fair_share_loop(arrivals: np.ndarray, sizes: np.ndarray, link: WanLink,
                     done: np.ndarray, faults: LinkFaults | None,
                     stats: dict) -> np.ndarray:
    n = arrivals.size
    collecting = obs.get_run() is not None
    busy_time = 0.0
    remaining = sizes.copy()
    attempts = np.ones(n, dtype=np.int64)  # current delivery attempt per flow
    # Completion tolerance is *relative* to the flow size: with many equal
    # flows finishing together, float cancellation can leave O(size * eps)
    # residues that would otherwise stall the event loop.
    finish_tol = _FINISH_TOL_SCALE * (1.0 + sizes)
    outages = faults.outages if faults is not None else ()
    # (time, flow) min-heap of future admissions — retransmits are pushed
    # back here, so arrivals are dynamic.
    pending: list[tuple[float, int]] = [(float(arrivals[i]), i) for i in range(n)]
    heapq.heapify(pending)
    active: list[int] = []
    t = pending[0][0]
    while pending or active:
        # admit arrivals at time t
        while pending and pending[0][0] <= t + 1e-12:
            active.append(heapq.heappop(pending)[1])
        if not active:
            t = pending[0][0]
            continue
        outage_end, next_outage_start = _next_outage(outages, t)
        t_arrive = pending[0][0] if pending else np.inf
        if outage_end > t:
            # link dead: flows stall until the outage lifts (or a new flow
            # queues up behind it)
            t_next = min(outage_end, t_arrive)
            stats["outage_time"] += t_next - t
            t = t_next
            continue
        rate = link.bandwidth / len(active)
        t_finish = t + min(remaining[i] for i in active) / rate
        t_next = min(t_finish, t_arrive, next_outage_start)
        elapsed = t_next - t
        if collecting:
            obs.observe("wan.queue_depth", len(active), buckets=QUEUE_DEPTH_BUCKETS)
            busy_time += elapsed
        progressed = 0
        for i in list(active):
            remaining[i] -= rate * elapsed
            if remaining[i] <= finish_tol[i]:
                progressed += 1
                active.remove(i)
                if faults is not None and faults.dropped(int(i), int(attempts[i])):
                    # delivery corrupt: retransmit from scratch after backoff
                    stats["retransmits"] += 1
                    stats["dropped_bytes"] += float(sizes[i])
                    remaining[i] = sizes[i]
                    delay = faults.retransmit_delay(int(attempts[i]))
                    attempts[i] += 1
                    heapq.heappush(pending, (t_next + delay, int(i)))
                else:
                    if (faults is not None and attempts[i] > 1
                            and attempts[i] >= faults.max_attempts):
                        stats["drops_exhausted"] += 1  # delivered on last try
                    done[i] = t_next
        if progressed == 0 and t_next == t_finish and active:
            # progress guard: force out the minimal-remaining flow so the
            # event loop is guaranteed to terminate even if float
            # cancellation leaves a residue above the tolerance
            i = min(active, key=lambda j: remaining[j])
            done[i] = t_next
            active.remove(i)
            stats["forced_completions"] += 1
            obs.inc_counter("wan.forced_completions")
            warnings.warn(
                f"wan fair-share progress guard force-completed flow {i} "
                f"(residue {remaining[i]:.3g} B above tolerance "
                f"{finish_tol[i]:.3g} B) — possible numeric stall",
                RuntimeWarning, stacklevel=2)
        t = t_next
    if collecting:
        span_t = float(done.max() - arrivals.min())
        obs.set_gauge("wan.link_utilization",
                      busy_time / span_t if span_t > 0 else 1.0)
    return done
