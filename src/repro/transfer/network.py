"""Shared-bandwidth WAN link model (processor sharing).

A wide-area link carrying many concurrent Globus transfers is modelled as
an egalitarian processor-sharing server: the aggregate bandwidth ``B`` is
split equally among active flows, re-divided at every arrival/completion.
The event loop below computes exact completion times for arbitrary arrival
schedules in O(n^2) worst case (n = number of files, <= a few thousand
here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs

__all__ = ["WanLink", "fair_share_completions"]

#: Queue-depth histogram edges (flows in flight on the shared link).
QUEUE_DEPTH_BUCKETS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096]


@dataclass(frozen=True)
class WanLink:
    """A WAN path with aggregate bandwidth and per-flow startup latency."""

    bandwidth: float  # bytes/second shared by all active flows
    latency: float = 0.5  # seconds of per-file setup (Globus handshake)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


def fair_share_completions(arrivals: np.ndarray, sizes: np.ndarray,
                           link: WanLink) -> np.ndarray:
    """Completion time of each flow under equal-share bandwidth.

    ``arrivals`` are the times flows hit the link (latency is added here);
    ``sizes`` are payload bytes. Returns per-flow completion times.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64) + link.latency
    sizes = np.asarray(sizes, dtype=np.float64)
    if arrivals.shape != sizes.shape:
        raise ValueError("arrivals and sizes must align")
    n = arrivals.size
    done = np.zeros(n)
    if n == 0:
        return done
    with obs.span("wan.fair_share", n_flows=int(n), bandwidth=link.bandwidth):
        return _fair_share_loop(arrivals, sizes, link, done)


def _fair_share_loop(arrivals: np.ndarray, sizes: np.ndarray, link: WanLink,
                     done: np.ndarray) -> np.ndarray:
    n = arrivals.size
    collecting = obs.get_run() is not None
    busy_time = 0.0
    remaining = sizes.copy()
    # Completion tolerance is *relative* to the flow size: with many equal
    # flows finishing together, float cancellation can leave O(size * eps)
    # residues that would otherwise stall the event loop.
    finish_tol = 1e-9 * (1.0 + sizes)
    order = np.argsort(arrivals, kind="stable")
    active: list[int] = []
    next_idx = 0
    t = float(arrivals[order[0]])
    while next_idx < n or active:
        # admit arrivals at time t
        while next_idx < n and arrivals[order[next_idx]] <= t + 1e-12:
            active.append(int(order[next_idx]))
            next_idx += 1
        if not active:
            t = float(arrivals[order[next_idx]])
            continue
        rate = link.bandwidth / len(active)
        t_finish = t + min(remaining[i] for i in active) / rate
        t_arrive = float(arrivals[order[next_idx]]) if next_idx < n else np.inf
        t_next = min(t_finish, t_arrive)
        elapsed = t_next - t
        if collecting:
            obs.observe("wan.queue_depth", len(active), buckets=QUEUE_DEPTH_BUCKETS)
            busy_time += elapsed
        completed = 0
        for i in list(active):
            remaining[i] -= rate * elapsed
            if remaining[i] <= finish_tol[i]:
                done[i] = t_next
                active.remove(i)
                completed += 1
        if completed == 0 and t_next == t_finish and active:
            # progress guard: force out the minimal-remaining flow
            i = min(active, key=lambda j: remaining[j])
            done[i] = t_next
            active.remove(i)
        t = t_next
    if collecting:
        span_t = float(done.max() - arrivals.min())
        obs.set_gauge("wan.link_utilization",
                      busy_time / span_t if span_t > 0 else 1.0)
        obs.inc_counter("wan.bytes_sent", int(sizes.sum()))
    return done
