"""Compress-then-transfer scenario (the paper's Fig. 13 testbed).

Each core owns a set of files: it compresses them sequentially and pushes
every finished file onto the shared WAN link, where all in-flight files
split the bandwidth (``repro.transfer.network``). Compression speed comes
from a per-codec throughput model — the paper measured nearly identical
compression times for CliZ/SZ3 and a slightly slower ZFP, and the
end-to-end win comes from CliZ's smaller files, which is exactly what this
simulation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.faults import FaultInjector, LinkFaults
from repro.transfer.network import WanLink, fair_share_stats

#: Per-file simulated-time spans are emitted only below this file count,
#: keeping traces of large sweeps bounded.
_MAX_TIMELINE_SPANS = 4096

__all__ = ["ThroughputModel", "PAPER_SPEEDS", "TransferResult", "simulate_globus"]


@dataclass(frozen=True)
class ThroughputModel:
    """Per-core compression throughput in (uncompressed) bytes/second."""

    bytes_per_second: float

    def seconds_for(self, n_bytes: int | float) -> float:
        return float(n_bytes) / self.bytes_per_second


#: Relative speeds calibrated from the paper's Fig. 13 (1024 cores: CliZ
#: 7.37 s, SZ3 7.38 s, ZFP 8.82 s on the same per-core workload). Absolute
#: scale is arbitrary; ratios are what matters.
_BASE = 150e6  # bytes/s per core
PAPER_SPEEDS: dict[str, ThroughputModel] = {
    "cliz": ThroughputModel(_BASE),  # reference speed
    "sz3": ThroughputModel(_BASE * 7.37 / 7.38),
    "zfp": ThroughputModel(_BASE * 7.37 / 8.82),
    "qoz": ThroughputModel(_BASE * 7.37 / 7.80),
    "sperr": ThroughputModel(_BASE * 7.37 / 20.0),  # "substantially slower"
}


@dataclass
class TransferResult:
    """Timeline of one simulated compress-and-transfer run."""

    codec: str
    n_cores: int
    n_files: int
    compress_time: float  # when the last core finishes compressing
    transfer_time: float  # last completion minus first arrival
    total_time: float  # wall clock until the last byte lands
    total_compressed_bytes: int
    per_file_completions: np.ndarray = field(repr=False, default=None)
    retransmits: int = 0  # deliveries dropped and resent (link faults)
    goodput: float = 1.0  # useful bytes / total bytes transmitted
    outage_time: float = 0.0  # seconds the link spent dark

    def as_row(self) -> str:
        row = (f"{self.codec:6s} cores={self.n_cores:5d} "
               f"compress={self.compress_time:8.2f}s "
               f"transfer={self.transfer_time:8.2f}s "
               f"total={self.total_time:8.2f}s "
               f"bytes={self.total_compressed_bytes}")
        if self.retransmits or self.outage_time:
            row += (f" retransmits={self.retransmits}"
                    f" goodput={self.goodput:.3f}"
                    f" outage={self.outage_time:.2f}s")
        return row


def _emit_timeline(dispatch, codec: str, arrivals: np.ndarray,
                   completions: np.ndarray, sizes: np.ndarray,
                   per_file_compress: float, n_cores: int) -> None:
    """Emit *simulated-time* spans for each compress and transfer interval.

    Spans land on the run timeline at ``run.t0_wall + simulated seconds``
    with one Chrome-trace lane per core (compress) plus a rotating set of
    WAN lanes (transfer), so compute/transfer overlap is visible in
    Perfetto next to the real wall-clock spans.
    """
    run = obs.get_run()
    if run is None or arrivals.size > _MAX_TIMELINE_SPANS:
        return
    for i in range(arrivals.size):
        core = i % n_cores
        run.record_span("compress.sim", t_start=float(arrivals[i]) - per_file_compress,
                        dur=per_file_compress, parent=dispatch,
                        tid=1000 + core, codec=codec, file=i, lane=f"core{core}")
        run.record_span("transfer.sim", t_start=float(arrivals[i]),
                        dur=float(completions[i] - arrivals[i]), parent=dispatch,
                        tid=2000 + i % 64, nbytes=int(sizes[i]),
                        codec=codec, file=i, lane="wan")


def simulate_globus(codec: str, *, n_cores: int, uncompressed_bytes: int,
                    compressed_bytes: list[int] | np.ndarray,
                    link: WanLink,
                    speeds: dict[str, ThroughputModel] | None = None,
                    faults: LinkFaults | FaultInjector | None = None) -> TransferResult:
    """Simulate ``len(compressed_bytes)`` files over ``n_cores`` cores.

    ``uncompressed_bytes`` is the per-file source size (drives compression
    time); ``compressed_bytes`` are the per-file payload sizes actually sent
    (measure them with the real codecs on the synthetic datasets).
    ``faults`` injects link outages and drop/retransmit behaviour — pass a
    :class:`~repro.faults.LinkFaults` directly or a
    :class:`~repro.faults.FaultInjector` (its outage/drop clauses apply).
    """
    if isinstance(faults, FaultInjector):
        faults = faults.link_faults()
    speeds = speeds or PAPER_SPEEDS
    if codec not in speeds:
        raise ValueError(f"no throughput model for codec {codec!r}")
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    sizes = np.asarray(compressed_bytes, dtype=np.float64)
    n_files = sizes.size
    if n_files == 0:
        raise ValueError("no files to transfer")
    per_file_compress = speeds[codec].seconds_for(uncompressed_bytes)

    # Round-robin files onto cores; each core compresses sequentially.
    arrivals = np.empty(n_files)
    for i in range(n_files):
        position_on_core = i // n_cores  # how many files this core did before
        arrivals[i] = (position_on_core + 1) * per_file_compress
    with obs.span("transfer.simulate", codec=codec, n_cores=n_cores,
                  n_files=n_files, faulty=faults is not None) as dispatch:
        completions, stats = fair_share_stats(arrivals, sizes, link,
                                              faults=faults)
        _emit_timeline(dispatch, codec, arrivals, completions, sizes,
                       per_file_compress, n_cores)

    compress_time = float(arrivals.max())
    total_time = float(completions.max())
    run = obs.get_run()
    if run is not None:
        obs.set_gauge(f"transfer.{codec}.compress_time", compress_time)
        obs.set_gauge(f"transfer.{codec}.total_time", total_time)
        obs.inc_counter("transfer.files", n_files)
    return TransferResult(
        codec=codec,
        n_cores=n_cores,
        n_files=n_files,
        compress_time=compress_time,
        transfer_time=total_time - float(arrivals.min()),
        total_time=total_time,
        total_compressed_bytes=int(sizes.sum()),
        per_file_completions=completions,
        retransmits=int(stats["retransmits"]),
        goodput=float(stats["goodput"]),
        outage_time=float(stats["outage_time"]),
    )
