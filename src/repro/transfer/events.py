"""A small discrete-event simulation core.

`repro.transfer.network` computes processor-sharing completions with a
closed-form event loop; this module provides the general-purpose engine for
richer scenarios (per-node NICs, staged pipelines) and doubles as an
independent oracle: the test suite cross-validates the two implementations
against each other on random workloads.

The engine is deliberately minimal: a time-ordered event queue plus
resources that re-plan on every arrival/departure. Events scheduled for
the same instant fire in insertion order (stable heap), which keeps runs
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.transfer.network import QUEUE_DEPTH_BUCKETS

__all__ = ["EventQueue", "SharedResource", "simulate_shared_link"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable = field(compare=False)


class EventQueue:
    """Time-ordered callback queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, time: float, action: Callable) -> None:
        """Run ``action`` at absolute ``time`` (not before ``now``)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        heapq.heappush(self._heap, _Event(max(time, self.now), self._seq, action))
        self._seq += 1

    def run(self, until: float = np.inf) -> float:
        """Process events in order until the queue drains (or ``until``)."""
        with obs.span("des.run") as sp:
            n_events = 0
            while self._heap and self._heap[0].time <= until:
                event = heapq.heappop(self._heap)
                self.now = event.time
                event.action()
                n_events += 1
            if sp is not None:
                sp.tags["n_events"] = n_events
                sp.tags["t_end"] = self.now
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)


class SharedResource:
    """A capacity shared equally among active jobs (processor sharing).

    Jobs are submitted with a size; the resource re-plans its next
    completion whenever membership changes. ``on_done(job_id, time)`` fires
    at each completion.
    """

    def __init__(self, queue: EventQueue, capacity: float,
                 on_done: Callable[[int, float], None]) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.queue = queue
        self.capacity = capacity
        self.on_done = on_done
        self.busy_time = 0.0  # simulated seconds with >= 1 active job
        self._remaining: dict[int, float] = {}
        self._last_update = 0.0
        self._plan_token = 0

    # ------------------------------------------------------------------ #
    def submit(self, job_id: int, size: float) -> None:
        if job_id in self._remaining:
            raise ValueError(f"job {job_id} already active")
        self._advance()
        self._remaining[job_id] = float(size)
        if obs.get_run() is not None:
            obs.observe("wan.queue_depth", len(self._remaining),
                        buckets=QUEUE_DEPTH_BUCKETS)
        self._replan()

    def _advance(self) -> None:
        """Charge elapsed progress to every active job."""
        now = self.queue.now
        if self._remaining:
            rate = self.capacity / len(self._remaining)
            elapsed = now - self._last_update
            if elapsed > 0:
                self.busy_time += elapsed
                for job in self._remaining:
                    self._remaining[job] -= rate * elapsed
        self._last_update = now

    def _replan(self) -> None:
        """Schedule the next completion; stale plans are token-invalidated."""
        self._plan_token += 1
        if not self._remaining:
            return
        token = self._plan_token
        rate = self.capacity / len(self._remaining)
        job, remaining = min(self._remaining.items(), key=lambda kv: (kv[1], kv[0]))
        eta = self.queue.now + max(remaining, 0.0) / rate
        self.queue.schedule(eta, lambda: self._complete(job, token))

    def _complete(self, job: int, token: int) -> None:
        if token != self._plan_token:
            return  # superseded by a later arrival
        self._advance()
        self._remaining.pop(job, None)
        self.on_done(job, self.queue.now)
        self._replan()


def simulate_shared_link(arrivals: np.ndarray, sizes: np.ndarray,
                         bandwidth: float, latency: float = 0.0) -> np.ndarray:
    """Processor-sharing completions via the DES engine.

    Semantically identical to
    :func:`repro.transfer.network.fair_share_completions`; used as its
    cross-validation oracle and as the substrate for richer scenarios.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64) + latency
    sizes = np.asarray(sizes, dtype=np.float64)
    if arrivals.shape != sizes.shape:
        raise ValueError("arrivals and sizes must align")
    queue = EventQueue()
    done = np.zeros(arrivals.size)

    def record(job: int, time: float) -> None:
        done[job] = time

    link = SharedResource(queue, bandwidth, record)
    with obs.span("des.simulate_shared_link", n_flows=int(arrivals.size),
                  bandwidth=bandwidth):
        for i, (t, s) in enumerate(zip(arrivals, sizes)):
            queue.schedule(float(t), lambda i=i, s=s: link.submit(i, float(s)))
        queue.run()
    if obs.get_run() is not None and arrivals.size:
        span_t = float(done.max() - arrivals.min())
        obs.set_gauge("wan.link_utilization",
                      link.busy_time / span_t if span_t > 0 else 1.0)
    return done
