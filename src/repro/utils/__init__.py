"""Shared utilities: argument validation, timing, profiling, RNG helpers."""

from repro.utils.validation import (
    check_array,
    check_error_bound,
    check_mask,
    ensure_float,
)
from repro.utils.timer import Timer
from repro.utils.profiling import (
    disable_profiling,
    enable_profiling,
    format_profile,
    get_profile,
    profile_stage,
    profiling_enabled,
    reset_profile,
)

__all__ = [
    "check_array",
    "check_error_bound",
    "check_mask",
    "ensure_float",
    "Timer",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "reset_profile",
    "profile_stage",
    "get_profile",
    "format_profile",
]
