"""Shared utilities: argument validation, timing, deterministic RNG helpers."""

from repro.utils.validation import (
    check_array,
    check_error_bound,
    check_mask,
    ensure_float,
)
from repro.utils.timer import Timer

__all__ = [
    "check_array",
    "check_error_bound",
    "check_mask",
    "ensure_float",
    "Timer",
]
