"""Argument validation helpers shared by every public entry point.

These keep error messages consistent across the compressors and fail fast on
malformed input instead of producing silently-wrong compressed streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_array", "check_error_bound", "check_mask", "ensure_float"]


def check_array(data: np.ndarray, *, name: str = "data", max_ndim: int = 4) -> np.ndarray:
    """Validate a numeric input array and return it as a C-contiguous ndarray.

    Parameters
    ----------
    data:
        Input array; must be a real floating/integer ndarray with
        ``1 <= ndim <= max_ndim`` and a positive number of elements.
    name:
        Name used in error messages.
    max_ndim:
        Highest supported dimensionality (the paper's datasets are 2D-4D).
    """
    arr = np.asarray(data)
    if arr.ndim < 1 or arr.ndim > max_ndim:
        raise ValueError(f"{name} must have 1..{max_ndim} dimensions, got {arr.ndim}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.floating) and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must be a real numeric array, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr)


def ensure_float(data: np.ndarray) -> np.ndarray:
    """Return ``data`` as float64 (the working precision of the compressors).

    float64 working precision keeps quantizer round-trips exact for
    float32 inputs; the container records the original dtype so decompression
    restores it.
    """
    arr = np.asarray(data)
    if arr.dtype == np.float64:
        return np.ascontiguousarray(arr)
    return np.ascontiguousarray(arr, dtype=np.float64)


def check_error_bound(eb: float, *, name: str = "error_bound") -> float:
    """Validate an absolute error bound (must be a finite positive float)."""
    val = float(eb)
    if not np.isfinite(val) or val <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {eb!r}")
    return val


def check_mask(mask, shape, *, name: str = "mask") -> np.ndarray | None:
    """Validate a validity mask: bool array matching ``shape``.

    ``True`` means the grid point carries valid data. ``None`` passes through
    (no mask). A mask with no valid point at all is rejected: there would be
    nothing to compress.
    """
    if mask is None:
        return None
    m = np.asarray(mask)
    if m.shape != tuple(shape):
        raise ValueError(f"{name} shape {m.shape} does not match data shape {tuple(shape)}")
    m = m.astype(bool, copy=False)
    if not m.any():
        raise ValueError(f"{name} marks every point invalid; nothing to compress")
    return np.ascontiguousarray(m)
