"""A tiny wall-clock timer used by the auto-tuner and experiment harnesses."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single instance can be entered multiple times; ``elapsed`` accumulates
    across uses, which is how the auto-tuner charges per-pipeline trial costs.
    Re-entrant (nested) use is supported: only the outermost exit adds to
    ``elapsed``, so a nested ``with t:`` block does not double-count or
    corrupt the total. Exiting a timer that was never entered raises
    ``RuntimeError`` instead of silently producing garbage.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None
        self._depth = 0

    def __enter__(self) -> "Timer":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        if self._depth == 0 or self._start is None:
            raise RuntimeError("Timer.__exit__ without matching __enter__")
        self._depth -= 1
        if self._depth == 0:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
        self._depth = 0
