"""A tiny wall-clock timer used by the auto-tuner and experiment harnesses."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single instance can be entered multiple times; ``elapsed`` accumulates
    across uses, which is how the auto-tuner charges per-pipeline trial costs.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
