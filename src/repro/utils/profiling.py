"""Per-stage profiler — a thin aggregation shim over ``repro.obs`` spans.

Historically this module kept its own module-global ``_stack``/``_records``,
which interleaved corruptly when two threads profiled concurrently and
lost worker records across ``ProcessPoolExecutor`` boundaries. It is now a
view over the run-scoped tracer: ``profile_stage`` *is* ``repro.obs.span``
(contextvar-based, so every thread sees its own ancestry), and
``get_profile()`` aggregates the active run's finished spans by
"/"-joined path into the same :class:`StageRecord` rows as before. Worker
spans merged back by ``repro.parallel`` show up here automatically,
nested under the dispatching stage.

Typical use (unchanged)::

    from repro.utils.profiling import enable_profiling, profile_stage, get_profile

    enable_profiling()
    with profile_stage("compress"):
        with profile_stage("quantize"):
            ...
        with profile_stage("encode", nbytes=len(blob)):
            ...
    for rec in get_profile():
        print(rec.path, rec.seconds, rec.calls, rec.nbytes)

For run ids, tags, metrics, and JSONL / Chrome-trace export, use
``repro.obs`` directly — ``enable_profiling()`` is just
``obs.start_run()`` plus these aggregation helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import trace as _trace
from repro.obs.trace import add_bytes, span as profile_stage  # noqa: F401  (re-export)

__all__ = [
    "StageRecord",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "reset_profile",
    "profile_stage",
    "add_bytes",
    "get_profile",
    "format_profile",
]


@dataclass
class StageRecord:
    """Aggregate for one stage path: total seconds, call count, byte count."""

    path: str
    seconds: float = 0.0
    calls: int = 0
    nbytes: int = 0

    @property
    def depth(self) -> int:
        return self.path.count("/")


def enable_profiling() -> None:
    """Turn on stage collection (clears any previous profile)."""
    _trace.start_run(tags={"source": "profiling"})


def disable_profiling() -> None:
    """Turn off stage collection; the collected profile remains readable."""
    _trace.end_run()


def profiling_enabled() -> bool:
    return _trace.get_run() is not None


def reset_profile() -> None:
    """Drop all collected records (does not change enablement)."""
    run = _trace.last_run()
    if run is not None:
        run.clear()


def get_profile() -> list[StageRecord]:
    """All records collected so far, in tree order.

    Each parent stage precedes its children; siblings keep first-seen
    order. (Spans finish child-first, so raw span order would list
    children before the stage that called them.)
    """
    run = _trace.last_run()
    if run is None:
        return []
    records: dict[str, StageRecord] = {}
    for sp in run.spans():
        rec = records.get(sp.path)
        if rec is None:
            rec = records[sp.path] = StageRecord(sp.path)
        rec.seconds += sp.dur
        rec.calls += 1
        rec.nbytes += sp.nbytes
    seen = {path: i for i, path in enumerate(records)}

    def key(path: str) -> tuple[int, ...]:
        parts = path.split("/")
        prefixes = ("/".join(parts[: i + 1]) for i in range(len(parts)))
        return tuple(seen.get(pre, len(seen)) for pre in prefixes)

    return [records[p] for p in sorted(records, key=key)]


def format_profile() -> str:
    """Render the profile as an aligned text table (one row per stage path)."""
    records = get_profile()
    if not records:
        return "(no profile collected)"
    rows = []
    for rec in records:
        indent = "  " * rec.depth
        label = indent + rec.path.rsplit("/", 1)[-1]
        # Zero-duration stages are real rows (0.00 ms); only the throughput
        # column degrades, and the division is guarded explicitly.
        if not rec.nbytes:
            thru = "       -"
        elif rec.seconds > 0:
            thru = f"{rec.nbytes / 1e6 / rec.seconds:8.1f}"
        else:
            thru = "     inf"
        rows.append((label, f"{rec.seconds * 1e3:10.2f}", f"{rec.calls:6d}",
                     f"{rec.nbytes:12d}" if rec.nbytes else "           -", thru))
    width = max(len(r[0]) for r in rows)
    width = max(width, len("stage"))
    head = f"{'stage':<{width}}  {'ms':>10}  {'calls':>6}  {'bytes':>12}  {'MB/s':>8}"
    lines = [head, "-" * len(head)]
    for label, ms, calls, nb, thru in rows:
        lines.append(f"{label:<{width}}  {ms}  {calls}  {nb}  {thru}")
    return "\n".join(lines)
