"""Nestable per-stage profiler for the compression pipelines.

Stages are named with ``profile_stage("huffman.decode")`` context managers;
nesting builds "/"-joined paths (``compress/quantize``,
``compress/encode/huffman``), so a stage's time can be attributed to the
pipeline phase that called it. The profiler is a module-global, explicitly
enabled and disabled: when disabled (the default) ``profile_stage`` is a
single dictionary lookup and two attribute reads per use, cheap enough to
leave in production hot paths.

Typical use::

    from repro.utils.profiling import enable_profiling, profile_stage, get_profile

    enable_profiling()
    with profile_stage("compress"):
        with profile_stage("quantize"):
            ...
        with profile_stage("encode", nbytes=len(blob)):
            ...
    for rec in get_profile():
        print(rec.path, rec.seconds, rec.calls, rec.nbytes)

``nbytes`` is an optional per-stage byte count (bytes produced or consumed,
by the caller's convention); it accumulates across calls like the timings.
Profiles survive across ``ProcessPoolExecutor`` boundaries only for the
parent process — workers profile independently and their records are not
merged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "StageRecord",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "reset_profile",
    "profile_stage",
    "add_bytes",
    "get_profile",
    "format_profile",
]


@dataclass
class StageRecord:
    """Aggregate for one stage path: total seconds, call count, byte count."""

    path: str
    seconds: float = 0.0
    calls: int = 0
    nbytes: int = 0

    @property
    def depth(self) -> int:
        return self.path.count("/")


_enabled = False
_stack: list[str] = []
_records: dict[str, StageRecord] = {}


def enable_profiling() -> None:
    """Turn on stage collection (clears any previous profile)."""
    global _enabled
    _enabled = True
    reset_profile()


def disable_profiling() -> None:
    """Turn off stage collection; the collected profile remains readable."""
    global _enabled
    _enabled = False
    _stack.clear()


def profiling_enabled() -> bool:
    return _enabled


def reset_profile() -> None:
    """Drop all collected records (does not change enablement)."""
    _records.clear()
    _stack.clear()


@contextmanager
def profile_stage(name: str, nbytes: int | None = None) -> Iterator[None]:
    """Time a named stage; nested stages get "/"-joined paths.

    ``nbytes`` (optional) is added to the stage's byte counter — pass the
    size of the payload the stage produced or consumed. A no-op when
    profiling is disabled.
    """
    if not _enabled:
        yield
        return
    path = f"{_stack[-1]}/{name}" if _stack else name
    _stack.append(path)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        _stack.pop()
        rec = _records.get(path)
        if rec is None:
            rec = _records[path] = StageRecord(path)
        rec.seconds += dt
        rec.calls += 1
        if nbytes is not None:
            rec.nbytes += int(nbytes)


def add_bytes(nbytes: int) -> None:
    """Credit ``nbytes`` to the innermost active stage (no-op if none/disabled)."""
    if not _enabled or not _stack:
        return
    path = _stack[-1]
    rec = _records.get(path)
    if rec is None:
        rec = _records[path] = StageRecord(path)
    rec.nbytes += int(nbytes)


def get_profile() -> list[StageRecord]:
    """All records collected so far, in tree order.

    Each parent stage precedes its children; siblings keep first-seen
    order. (Raw insertion order is completion order, which would list
    children before the stage that called them.)
    """
    seen = {path: i for i, path in enumerate(_records)}

    def key(path: str) -> tuple[int, ...]:
        parts = path.split("/")
        prefixes = ("/".join(parts[: i + 1]) for i in range(len(parts)))
        return tuple(seen.get(pre, len(seen)) for pre in prefixes)

    return [_records[p] for p in sorted(_records, key=key)]


def format_profile() -> str:
    """Render the profile as an aligned text table (one row per stage path)."""
    records = get_profile()
    if not records:
        return "(no profile collected)"
    rows = []
    for rec in records:
        indent = "  " * rec.depth
        label = indent + rec.path.rsplit("/", 1)[-1]
        mb = rec.nbytes / 1e6
        thru = f"{mb / rec.seconds:8.1f}" if rec.seconds > 0 and rec.nbytes else "       -"
        rows.append((label, f"{rec.seconds * 1e3:10.2f}", f"{rec.calls:6d}",
                     f"{rec.nbytes:12d}" if rec.nbytes else "           -", thru))
    width = max(len(r[0]) for r in rows)
    width = max(width, len("stage"))
    head = f"{'stage':<{width}}  {'ms':>10}  {'calls':>6}  {'bytes':>12}  {'MB/s':>8}"
    lines = [head, "-" * len(head)]
    for label, ms, calls, nb, thru in rows:
        lines.append(f"{label:<{width}}  {ms}  {calls}  {nb}  {thru}")
    return "\n".join(lines)
