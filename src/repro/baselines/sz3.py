"""SZ3 baseline — dynamic spline interpolation + Huffman + LZ.

A faithful reimplementation of the SZ3 pipeline [Zhao et al., ICDE'21;
Liang et al., SZ3 framework] on our shared substrate: multigrid spline
interpolation with per-(level, dim) linear/cubic selection (SZ3's "dynamic"
fitting), linear-scale quantization, a single Huffman tree, and an LZ
backend. Unlike CliZ it has no mask awareness, no dimension
permutation/fusion search, no periodic extraction and no bin
classification — which is exactly the gap the paper measures.

SZ3 accepts a ``mask`` argument only to resolve relative error bounds over
valid points (so comparisons are apples-to-apples); the mask does not
influence compression, and CESM-style fill values flow through the
predictor as ordinary (pathological) data.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import (
    decode_bits,
    decode_code_stream,
    decode_floats,
    encode_bits,
    encode_code_stream,
    encode_floats,
)
from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.prediction.interpolation import InterpSpec, interp_compress, interp_decompress
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["SZ3"]


class SZ3:
    """SZ3-style error-bounded lossy compressor (baseline).

    Parameters
    ----------
    fitting:
        ``'auto'`` (default; SZ3's dynamic per-level selection), ``'linear'``
        or ``'cubic'``.
    """

    codec_name = "sz3"

    def __init__(self, fitting: str = "auto") -> None:
        if fitting not in ("auto", "linear", "cubic"):
            raise ValueError(f"unknown fitting {fitting!r}")
        self.fitting = fitting

    def _spec(self, ndim: int, level_eb_factors: tuple[float, ...] = ()) -> InterpSpec:
        return InterpSpec(order=tuple(range(ndim)), fitting=self.fitting,
                          level_eb_factors=level_eb_factors)

    # ------------------------------------------------------------------ #
    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        eb = resolve_error_bound(work, abs_eb, rel_eb, mask)
        spec = self._spec(work.ndim)
        res = interp_compress(work, eb, spec)
        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "eb": eb,
            "fitting": self.fitting,
        })
        container.add_section("codes", encode_code_stream(res.codes))
        container.add_section("unpred", encode_floats(res.unpredictable))
        if self.fitting == "auto":
            container.add_section("fits", encode_bits(res.fit_choices))
        return container.to_bytes()

    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not an SZ3 stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        fitting = header["fitting"]
        spec = InterpSpec(order=tuple(range(len(shape))), fitting=fitting)
        codes = decode_code_stream(container.section("codes"))
        unpred = decode_floats(container.section("unpred"))
        fits = decode_bits(container.section("fits")) if fitting == "auto" else None
        work = interp_decompress(shape, header["eb"], spec, codes, unpred,
                                 fit_choices=fits)
        return work.astype(np.dtype(header["dtype"]), copy=False)
