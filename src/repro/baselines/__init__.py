"""Baseline lossy compressors the paper evaluates against or cites.

Primary comparison set (paper §VII): SZ3, QoZ, ZFP, SPERR.
Related-work set (paper §II, via the Underwood et al. climate evaluation):
TTHRESH, BitGrooming, DigitRounding.
"""

from repro.baselines.bitgrooming import BitGrooming
from repro.baselines.digitrounding import DigitRounding
from repro.baselines.qoz import QoZ
from repro.baselines.sperr import SPERR
from repro.baselines.sz2 import SZ2
from repro.baselines.sz3 import SZ3
from repro.baselines.tthresh import TTHRESH
from repro.baselines.zfp import ZFP

__all__ = ["SZ3", "SZ2", "QoZ", "ZFP", "SPERR", "TTHRESH", "BitGrooming", "DigitRounding"]
