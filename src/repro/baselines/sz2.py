"""SZ2-style baseline: block-wise linear-regression prediction.

SZ2 [Liang et al., Big Data 2018] — the prediction-based generation before
SZ3 — splits the array into small blocks and predicts each block either
with a first-order Lorenzo stencil or with a *linear regression plane*
fitted per block; residuals go through the same linear quantization +
Huffman + LZ stack.

This reimplementation uses the regression predictor for every block (the
"SZ2-R" variant): the plane coefficients come from the original data via a
closed-form least-squares fit — vectorized across all blocks at once — and
predictions depend only on the stored coefficients, never on neighbouring
reconstructed values, so the whole compressor is NumPy-parallel. Lorenzo
block mode (sequential by construction) lives separately in
:mod:`repro.prediction.lorenzo` as a reference implementation.

Coefficients are quantized (as in SZ2) so both sides predict identically;
the pointwise bound is guaranteed by the shared quantizer.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import (
    decode_code_stream,
    decode_floats,
    encode_code_stream,
    encode_floats,
)
from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.quantization.linear import DEFAULT_RADIUS, UNPREDICTABLE, LinearQuantizer
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["SZ2", "fit_block_planes", "predict_from_planes"]

_BLOCK = 6  # SZ2's default block side


def _block_grid(shape: tuple[int, ...]) -> tuple[int, ...]:
    return tuple((n + _BLOCK - 1) // _BLOCK for n in shape)


def _gather(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Edge-padded (n_blocks, BLOCK^d) matrix of blocks (replicate edges)."""
    shape = data.shape
    d = data.ndim
    grid = _block_grid(shape)
    padded_shape = tuple(g * _BLOCK for g in grid)
    padded = np.empty(padded_shape, dtype=np.float64)
    padded[tuple(slice(0, n) for n in shape)] = data
    for axis, n in enumerate(shape):
        pn = padded.shape[axis]
        if pn > n:
            src = tuple(slice(None) if a != axis else slice(n - 1, n) for a in range(d))
            dst = tuple(slice(None) if a != axis else slice(n, pn) for a in range(d))
            padded[dst] = padded[src]
    inter = padded.reshape(tuple(v for g in grid for v in (g, _BLOCK)))
    order = tuple(range(0, 2 * d, 2)) + tuple(range(1, 2 * d, 2))
    blocks = np.transpose(inter, order).reshape(int(np.prod(grid)), _BLOCK ** d)
    return np.ascontiguousarray(blocks), grid


def _scatter(blocks: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    d = len(shape)
    grid = _block_grid(shape)
    inter = blocks.reshape(grid + (_BLOCK,) * d)
    order = []
    for i in range(d):
        order.extend([i, d + i])
    padded = np.transpose(inter, order).reshape(tuple(g * _BLOCK for g in grid))
    return np.ascontiguousarray(padded[tuple(slice(0, n) for n in shape)])


def _design_matrix(ndim: int) -> np.ndarray:
    """(BLOCK^d, ndim+1) design matrix [1, i0, i1, ...] for the plane fit."""
    coords = np.meshgrid(*[np.arange(_BLOCK, dtype=np.float64)] * ndim, indexing="ij")
    cols = [np.ones(_BLOCK ** ndim)] + [c.ravel() for c in coords]
    return np.stack(cols, axis=1)


def fit_block_planes(blocks: np.ndarray, ndim: int) -> np.ndarray:
    """Least-squares plane coefficients per block, vectorized.

    Returns (n_blocks, ndim+1): intercept + one slope per dimension.
    """
    design = _design_matrix(ndim)
    pinv = np.linalg.pinv(design)  # (ndim+1, BLOCK^d), shared by every block
    return blocks @ pinv.T


def predict_from_planes(coeffs: np.ndarray, ndim: int) -> np.ndarray:
    """Evaluate the planes on the block grid: (n_blocks, BLOCK^d)."""
    design = _design_matrix(ndim)
    return coeffs @ design.T


class SZ2:
    """SZ2-style regression-predictor compressor (baseline)."""

    codec_name = "sz2"
    pointwise_bound = True

    def __init__(self, radius: int = DEFAULT_RADIUS) -> None:
        self.radius = radius

    # ------------------------------------------------------------------ #
    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        eb = resolve_error_bound(work, abs_eb, rel_eb, mask)

        blocks, grid = _gather(work)
        coeffs = fit_block_planes(blocks, work.ndim)
        # Quantize the coefficients (SZ2 stores them reduced-precision) so
        # encoder and decoder share the exact same predictor.
        cq = eb / _BLOCK  # slope quantum: accumulates to < eb over a block
        qcoeffs = np.rint(coeffs / cq) * cq
        preds = predict_from_planes(qcoeffs, work.ndim)

        quant = LinearQuantizer(eb, radius=self.radius)
        codes, rec = quant.quantize(blocks, preds)
        unpred = blocks.ravel()[codes.ravel() == UNPREDICTABLE]

        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "eb": eb,
            "radius": self.radius,
        })
        container.add_section("codes", encode_code_stream(codes.ravel()))
        container.add_section("coeffs", encode_floats(qcoeffs.ravel()))
        container.add_section("unpred", encode_floats(unpred))
        return container.to_bytes()

    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not an SZ2 stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        d = len(shape)
        grid = _block_grid(shape)
        n_blocks = int(np.prod(grid))
        size = _BLOCK ** d
        codes = decode_code_stream(container.section("codes")).reshape(n_blocks, size)
        qcoeffs = decode_floats(container.section("coeffs")).reshape(n_blocks, d + 1)
        unpred = decode_floats(container.section("unpred"))
        preds = predict_from_planes(qcoeffs, d)
        quant = LinearQuantizer(header["eb"], radius=header["radius"])
        rec = quant.dequantize(codes.ravel(), preds.ravel(), unpred).reshape(n_blocks, size)
        work = _scatter(rec, shape)
        return work.astype(np.dtype(header["dtype"]), copy=False)
