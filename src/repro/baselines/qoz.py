"""QoZ 1.1 baseline — quality-oriented SZ3 with level-wise bound tuning.

QoZ [Liu et al., SC'22] extends SZ3's interpolation with (a) dynamic
per-level predictor selection and (b) *level-wise error bounds*: points on
coarse interpolation levels are referenced by many later predictions, so
compressing them more precisely (eb / alpha^depth, floored at eb / beta)
improves overall rate-distortion. QoZ tunes (alpha, beta) per dataset by
compressing a sampled block under each candidate and scoring quality versus
rate; we score ``PSNR - 6.02 * bitrate`` (the memoryless-Gaussian
rate-distortion slope of ~6 dB/bit), which reproduces QoZ's
better-PSNR-at-equal-bitrate behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import (
    decode_bits,
    decode_code_stream,
    decode_floats,
    encode_bits,
    encode_code_stream,
    encode_floats,
)
from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.prediction.interpolation import (
    InterpSpec,
    interp_compress,
    interp_decompress,
    max_level,
)
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["QoZ"]

#: (alpha, beta) candidates, after QoZ's own defaults.
_AB_CANDIDATES = ((1.0, 1.0), (1.25, 2.0), (1.5, 4.0), (2.0, 4.0))


def _level_factors(n_levels: int, alpha: float, beta: float) -> tuple[float, ...]:
    """Coarsest-first eb factors: eb/alpha^depth floored at eb/beta."""
    out = []
    for idx in range(n_levels):
        depth_from_finest = n_levels - 1 - idx
        out.append(max(1.0 / (alpha ** depth_from_finest), 1.0 / beta))
    return tuple(out)


def _sample_block(data: np.ndarray, target: int = 20000) -> np.ndarray:
    """A central block of roughly ``target`` points for (alpha, beta) tuning."""
    shape = data.shape
    frac = min(1.0, (target / data.size) ** (1.0 / data.ndim))
    slices = []
    for n in shape:
        side = max(2, int(round(n * frac)))
        start = max(0, (n - side) // 2)
        slices.append(slice(start, start + side))
    return np.ascontiguousarray(data[tuple(slices)])


class QoZ:
    """QoZ 1.1-style compressor (baseline)."""

    codec_name = "qoz"

    def __init__(self, candidates: tuple[tuple[float, float], ...] = _AB_CANDIDATES) -> None:
        self.candidates = tuple(candidates)

    # ------------------------------------------------------------------ #
    def _tune_ab(self, work: np.ndarray, eb: float) -> tuple[float, float]:
        """Pick (alpha, beta) maximizing PSNR - 6.02 * bitrate on a sample."""
        sample = _sample_block(work)
        levels = max_level(sample.shape)
        span = float(sample.max() - sample.min()) or 1.0
        best_score, best_ab = -np.inf, self.candidates[0]
        for alpha, beta in self.candidates:
            spec = InterpSpec(order=tuple(range(sample.ndim)), fitting="auto",
                              level_eb_factors=_level_factors(levels, alpha, beta))
            res = interp_compress(sample, eb, spec)
            mse = float(((res.reconstructed - sample) ** 2).mean())
            psnr = 20 * np.log10(span / np.sqrt(mse)) if mse > 0 else 200.0
            freqs = np.bincount(res.codes)
            p = freqs[freqs > 0] / res.codes.size
            bitrate = float(-(p * np.log2(p)).sum())
            score = psnr - 6.02 * bitrate
            if score > best_score:
                best_score, best_ab = score, (alpha, beta)
        return best_ab

    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        eb = resolve_error_bound(work, abs_eb, rel_eb, mask)
        alpha, beta = self._tune_ab(work, eb)
        levels = max_level(work.shape)
        spec = InterpSpec(order=tuple(range(work.ndim)), fitting="auto",
                          level_eb_factors=_level_factors(levels, alpha, beta))
        res = interp_compress(work, eb, spec)
        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "eb": eb,
            "alpha": alpha,
            "beta": beta,
        })
        container.add_section("codes", encode_code_stream(res.codes))
        container.add_section("unpred", encode_floats(res.unpredictable))
        container.add_section("fits", encode_bits(res.fit_choices))
        return container.to_bytes()

    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not a QoZ stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        levels = max_level(shape)
        spec = InterpSpec(order=tuple(range(len(shape))), fitting="auto",
                          level_eb_factors=_level_factors(levels, header["alpha"], header["beta"]))
        codes = decode_code_stream(container.section("codes"))
        unpred = decode_floats(container.section("unpred"))
        fits = decode_bits(container.section("fits"))
        work = interp_decompress(shape, header["eb"], spec, codes, unpred, fit_choices=fits)
        return work.astype(np.dtype(header["dtype"]), copy=False)
