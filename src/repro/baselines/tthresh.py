"""TTHRESH-style Tucker/HOSVD tensor compression.

TTHRESH [Ballester-Ripoll et al., TVCG 2019] is the dimension-reduction
representative in the paper's taxonomy (§II): a higher-order SVD
decomposes the tensor into a small core and per-mode factor matrices, and
the (strongly energy-concentrated) core is quantized.

This reimplementation keeps the algorithmic skeleton:

1. HOSVD via SVD of each mode unfolding (truncated adaptively),
2. greedy core truncation to an RMSE target — TTHRESH, like the original,
   targets *mean* error, not a pointwise bound (``pointwise_bound=False``),
3. uniform quantization of the surviving core coefficients + sparse index
   coding, factors stored in float32, everything LZ-post-processed.

The error target maps the requested bound to an RMSE budget
(``rmse ~ eb / 3``), which lands distortion in the same regime as the
error-bounded codecs for rate-distortion comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
    zigzag_decode,
    zigzag_encode,
)
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["TTHRESH", "hosvd", "tucker_reconstruct"]


def _unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def _mode_multiply(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    moved = np.moveaxis(tensor, mode, 0)
    shape = moved.shape
    out = matrix @ moved.reshape(shape[0], -1)
    return np.moveaxis(out.reshape((matrix.shape[0],) + shape[1:]), 0, mode)


def hosvd(tensor: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
    """Full higher-order SVD: core + orthonormal factor per mode."""
    factors = []
    core = np.asarray(tensor, dtype=np.float64)
    for mode in range(tensor.ndim):
        u, _, _ = np.linalg.svd(_unfold(tensor, mode), full_matrices=False)
        factors.append(u)
    for mode, u in enumerate(factors):
        core = _mode_multiply(core, u.T, mode)
    return core, factors


def tucker_reconstruct(core: np.ndarray, factors: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`hosvd` (with possibly truncated core/factors)."""
    out = core
    for mode, u in enumerate(factors):
        out = _mode_multiply(out, u, mode)
    return out


class TTHRESH:
    """HOSVD + core-thresholding compressor (baseline; RMSE-targeted)."""

    codec_name = "tthresh"
    pointwise_bound = False

    def __init__(self, rmse_fraction: float = 1.0 / 3.0) -> None:
        self.rmse_fraction = rmse_fraction

    # ------------------------------------------------------------------ #
    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        eb = resolve_error_bound(work, abs_eb, rel_eb, mask)
        rmse_target = eb * self.rmse_fraction

        core, factors = hosvd(work)
        flat = core.ravel()
        # Orthonormal factors: core L2 error equals data L2 error. Keep the
        # largest coefficients until the dropped-energy budget is met, then
        # quantize the survivors against the same budget split.
        budget = (rmse_target ** 2) * work.size
        order = np.argsort(np.abs(flat))  # ascending
        cum_energy = np.cumsum(flat[order] ** 2)
        n_drop = int(np.searchsorted(cum_energy, 0.5 * budget, side="right"))
        kept_idx = np.sort(order[n_drop:])

        # Rank truncation (the Tucker payoff): slice core and factors down
        # to the largest surviving index per mode, so low-rank data stores
        # tiny factor matrices instead of full orthogonal bases.
        if kept_idx.size:
            coords = np.unravel_index(kept_idx, core.shape)
            ranks = tuple(int(c.max()) + 1 for c in coords)
        else:
            ranks = (1,) * core.ndim
        core = core[tuple(slice(0, r) for r in ranks)]
        factors = [u[:, :r] for u, r in zip(factors, ranks)]
        flat = np.ascontiguousarray(core).ravel()
        if kept_idx.size:
            kept_idx = np.ravel_multi_index(coords, core.shape)
            sort = np.argsort(kept_idx)
            kept_idx = kept_idx[sort]
        kept = flat[kept_idx]
        # quantize survivors: per-coefficient error q/2, total (q^2/12)*k
        k = max(kept.size, 1)
        q = float(np.sqrt(6.0 * 0.5 * budget / k))
        q = max(q, float(np.abs(kept).max()) / 2.0 ** 40 if kept.size else 1e-300)
        bins = np.rint(kept / q).astype(np.int64)

        payload = bytearray()
        encode_uvarint(kept_idx.size, payload)
        if kept_idx.size:
            deltas = np.diff(kept_idx, prepend=0)
            payload += encode_uvarint_array(deltas.astype(np.uint64))
            payload += encode_uvarint_array(zigzag_encode(bins))

        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "eb": eb,
            "q": q,
            "factor_shapes": [list(u.shape) for u in factors],
            "core_shape": list(core.shape),
        })
        container.add_section("core", lz_compress(bytes(payload)))
        for mode, u in enumerate(factors):
            container.add_section(f"factor{mode}",
                                  lz_compress(u.astype(np.float32).tobytes()))
        return container.to_bytes()

    # ------------------------------------------------------------------ #
    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not a TTHRESH stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        core_shape = tuple(header["core_shape"])
        core = np.zeros(int(np.prod(core_shape)))
        payload = lz_decompress(container.section("core"))
        n, pos = decode_uvarint(payload, 0)
        if n:
            deltas, pos = decode_uvarint_array(payload, n, pos)
            idx = np.cumsum(deltas.astype(np.int64))
            bins, pos = decode_uvarint_array(payload, n, pos)
            core[idx] = zigzag_decode(bins) * header["q"]
        core = core.reshape(core_shape)
        factors = []
        for mode, fshape in enumerate(header["factor_shapes"]):
            raw = lz_decompress(container.section(f"factor{mode}"))
            factors.append(np.frombuffer(raw, dtype=np.float32)
                           .reshape(tuple(fshape)).astype(np.float64))
        work = tucker_reconstruct(core, factors)
        return work.astype(np.dtype(header["dtype"]), copy=False)
