"""Multi-level CDF 9/7 discrete wavelet transform via lifting.

The biorthogonal 9/7 wavelet (JPEG2000's lossy filter, and SPERR's) is
implemented as the standard four lifting steps plus scaling. Boundaries use
clamped (repeat-edge) neighbour indexing inside each lifting step — every
step modifies one parity from the other, so the transform inverts to
floating-point round-off for *any* length, including odd lengths.

Multi-level decomposition follows the Mallat layout: after each level the
approximation coefficients occupy the leading ``ceil(n / 2)`` slots of each
axis and the next level transforms only that corner. All 1D passes are
vectorized across the remaining axes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dwt_forward", "dwt_inverse", "max_dwt_levels"]

_A1 = -1.586134342059924
_A2 = -0.052980118572961
_A3 = 0.882911075530934
_A4 = 0.443506852043971
_K = 1.230174104914001


def max_dwt_levels(shape: tuple[int, ...], cap: int = 4) -> int:
    """Deepest decomposition with every axis keeping >= 4 approx samples."""
    levels = 0
    dims = list(shape)
    while levels < cap and all(n >= 8 for n in dims):
        dims = [(n + 1) // 2 for n in dims]
        levels += 1
    return levels


def _lift_axis_forward(arr: np.ndarray, axis: int) -> None:
    """One 9/7 level along ``axis`` of the leading region, in place.

    On output the approximation (even) samples occupy the first
    ``ceil(n/2)`` positions and details the rest.
    """
    n = arr.shape[axis]
    if n < 2:
        return
    moved = np.moveaxis(arr, axis, -1)
    s = np.ascontiguousarray(moved[..., 0::2])  # even
    d = np.ascontiguousarray(moved[..., 1::2])  # odd
    ns, nd = s.shape[-1], d.shape[-1]

    def right(x, limit):  # x[i+1] with clamped edge
        return x[..., np.minimum(np.arange(limit) + 1, x.shape[-1] - 1)]

    def left(x, limit):  # x[i-1] with clamped edge
        return x[..., np.maximum(np.arange(limit) - 1, 0)]

    d += _A1 * (s[..., :nd] + right(s, nd))
    s += _A2 * (left(d, ns)[..., :ns] + d[..., np.minimum(np.arange(ns), nd - 1)])
    d += _A3 * (s[..., :nd] + right(s, nd))
    s += _A4 * (left(d, ns)[..., :ns] + d[..., np.minimum(np.arange(ns), nd - 1)])
    s *= _K
    d *= 1.0 / _K
    moved[..., :ns] = s
    moved[..., ns:] = d


def _lift_axis_inverse(arr: np.ndarray, axis: int) -> None:
    """Exact mirror of :func:`_lift_axis_forward`."""
    n = arr.shape[axis]
    if n < 2:
        return
    moved = np.moveaxis(arr, axis, -1)
    ns = (n + 1) // 2
    nd = n - ns
    s = np.ascontiguousarray(moved[..., :ns])
    d = np.ascontiguousarray(moved[..., ns:])

    def right(x, limit):
        return x[..., np.minimum(np.arange(limit) + 1, x.shape[-1] - 1)]

    def left(x, limit):
        return x[..., np.maximum(np.arange(limit) - 1, 0)]

    s *= 1.0 / _K
    d *= _K
    s -= _A4 * (left(d, ns)[..., :ns] + d[..., np.minimum(np.arange(ns), nd - 1)])
    d -= _A3 * (s[..., :nd] + right(s, nd))
    s -= _A2 * (left(d, ns)[..., :ns] + d[..., np.minimum(np.arange(ns), nd - 1)])
    d -= _A1 * (s[..., :nd] + right(s, nd))
    out = np.empty_like(moved)
    out[..., 0::2] = s
    out[..., 1::2] = d
    moved[...] = out


def dwt_forward(data: np.ndarray, levels: int) -> np.ndarray:
    """Forward multi-level 9/7 DWT (returns a new float64 array)."""
    out = np.array(data, dtype=np.float64, copy=True)
    shape = out.shape
    dims = list(shape)
    for _ in range(levels):
        region = tuple(slice(0, n) for n in dims)
        view = out[region]
        for axis in range(out.ndim):
            if dims[axis] >= 2:
                _lift_axis_forward(view, axis)
        dims = [(n + 1) // 2 for n in dims]
    return out


def dwt_inverse(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Inverse of :func:`dwt_forward`."""
    out = np.array(coeffs, dtype=np.float64, copy=True)
    if levels == 0:
        return out
    shape = out.shape
    # region sizes per level, outermost first
    sizes = [list(shape)]
    for _ in range(levels - 1):
        sizes.append([(n + 1) // 2 for n in sizes[-1]])
    for dims in reversed(sizes):
        region = tuple(slice(0, n) for n in dims)
        view = out[region]
        for axis in range(out.ndim - 1, -1, -1):
            if dims[axis] >= 2:
                _lift_axis_inverse(view, axis)
    return out
