"""SPERR baseline: wavelet + set-partitioning compression."""

from repro.baselines.sperr.compressor import SPERR

__all__ = ["SPERR"]
