"""SPERR compressor facade: DWT + quantize + SPECK + outlier correction.

Pipeline (after Li et al.'s SPERR): multi-level CDF 9/7 wavelet transform;
uniform scalar quantization of the coefficients with step ``q`` tied to the
tolerance; SPECK set-partitioning coding of the integer magnitudes; then an
explicit **outlier pass** — the encoder reconstructs, finds the points
whose error still exceeds the bound (the 9/7 transform is only
near-orthogonal, so coefficient-domain control cannot certify a pointwise
bound), and stores exact-quantized corrections for them. The decoder
applies the corrections, making the pointwise bound unconditional.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sperr.speck import speck_decode, speck_encode
from repro.baselines.sperr.wavelet import dwt_forward, dwt_inverse, max_dwt_levels
from repro.core.compressor import resolve_error_bound
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.container import Container
from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
)
from repro.obs import traced_compress, traced_decompress
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["SPERR"]

#: Coefficient quantization step as a fraction of the tolerance. Larger is
#: cheaper but produces more outliers; 1.0 is a good balance empirically.
_Q_FACTOR = 1.0


class SPERR:
    """SPERR-style wavelet compressor with guaranteed pointwise bound."""

    codec_name = "sperr"

    # ------------------------------------------------------------------ #
    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        tol = resolve_error_bound(work, abs_eb, rel_eb, mask)
        levels = max_dwt_levels(work.shape)
        q = tol * _Q_FACTOR

        coeffs = dwt_forward(work, levels)
        # Keep quantized magnitudes inside int64: on pathological inputs
        # (e.g. CESM ~1e36 fill values with a tiny tolerance) the quantum is
        # widened and the outlier pass absorbs the loss — mirroring how real
        # SPERR degrades on fill-valued climate fields.
        max_coef = float(np.abs(coeffs).max()) if coeffs.size else 0.0
        if max_coef > 0:
            q = max(q, max_coef / 2.0 ** 52)
        ints = np.rint(coeffs / q).astype(np.int64)

        writer = BitWriter()
        n_planes = speck_encode(ints, writer)

        # ---- outlier correction ---------------------------------------- #
        rec = dwt_inverse(ints.astype(np.float64) * q, levels)
        resid = (work - rec).ravel()
        bad = np.flatnonzero(~(np.abs(resid) <= tol))  # catches NaN too
        # store the exact original values for outliers: unconditional bound
        out = bytearray()
        encode_uvarint(len(bad), out)
        if len(bad):
            deltas = np.diff(bad, prepend=0)
            out += encode_uvarint_array(deltas.astype(np.uint64))
            out += work.ravel()[bad].tobytes()
        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "tol": tol,
            "q": float(q),
            "levels": levels,
            "n_planes": n_planes,
            "bit_length": writer.bit_length,
        })
        container.add_section("stream", writer.getvalue())
        container.add_section("outliers", lz_compress(bytes(out)))
        return container.to_bytes()

    # ------------------------------------------------------------------ #
    @traced_decompress
    def decompress(self, blob: bytes, *, preview_planes: int | None = None) -> np.ndarray:
        """Full reconstruction, or an embedded *preview*.

        ``preview_planes=k`` decodes only the k most significant bit planes
        of the coefficient stream (the SPECK stream is embedded, so any
        prefix is a valid coarse reconstruction). Previews skip the outlier
        corrections and therefore do NOT honour the error bound — they are
        for progressive browsing, matching SPERR's multi-resolution use.
        """
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not a SPERR stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        reader = BitReader(container.section("stream"), bit_length=header["bit_length"])
        ints = speck_decode(shape, header["n_planes"], reader,
                            stop_after=preview_planes)
        work = dwt_inverse(ints.astype(np.float64) * header["q"], header["levels"])
        if preview_planes is not None and preview_planes < header["n_planes"]:
            return work.astype(np.dtype(header["dtype"]), copy=False)

        payload = lz_decompress(container.section("outliers"))
        n_bad, pos = decode_uvarint(payload, 0)
        if n_bad:
            deltas, pos = decode_uvarint_array(payload, n_bad, pos)
            idx = np.cumsum(deltas.astype(np.int64))
            exact = np.frombuffer(payload[pos : pos + 8 * n_bad], dtype=np.float64)
            flat = work.ravel()
            flat[idx] = exact
        return work.astype(np.dtype(header["dtype"]), copy=False)
