"""SPECK-style set-partitioning bit-plane coder (SPERR's entropy stage).

Integerized wavelet coefficient magnitudes are coded plane by plane:

* a **sorting pass** walks the list of insignificant sets (hyper-rectangles
  aligned with a max-pooling pyramid, so set significance is one lookup);
  significant sets split into their 2^d pyramid children until single
  coefficients emerge, which emit a sign bit and join the significant list;
* a **refinement pass** emits the current plane's bit for every coefficient
  that became significant in an earlier plane (fully vectorized).

The decoder replays the identical control flow driven by the read bits, so
no geometry is stored beyond the array shape. Coding runs down to plane 0,
i.e. the integer magnitudes round-trip exactly — overall precision is set
by the caller's quantization step.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter

__all__ = ["speck_encode", "speck_decode"]


def _pool_max(a: np.ndarray) -> np.ndarray:
    """Max-pool by 2 along every axis longer than 1 (odd tails kept)."""
    out = a
    for axis in range(a.ndim):
        n = out.shape[axis]
        if n <= 1:
            continue
        sl_e = tuple(slice(None) if ax != axis else slice(0, None, 2) for ax in range(out.ndim))
        sl_o = tuple(slice(None) if ax != axis else slice(1, None, 2) for ax in range(out.ndim))
        even = out[sl_e]
        odd = out[sl_o]
        if even.shape[axis] > odd.shape[axis]:
            merged = even.copy()
            sl_head = tuple(slice(None) if ax != axis else slice(0, odd.shape[axis]) for ax in range(out.ndim))
            np.maximum(merged[sl_head], odd, out=merged[sl_head])
            out = merged
        else:
            out = np.maximum(even, odd)
    return out


def _build_pyramid(absint: np.ndarray) -> list[tuple[np.ndarray, tuple[int, ...]]]:
    """Max pyramid from the coefficient array up to a single cell."""
    pyramid = [absint]
    cur = absint
    while any(n > 1 for n in cur.shape):
        cur = _pool_max(cur)
        pyramid.append(cur)
    return pyramid


def _children(idx: tuple[int, ...], child_shape: tuple[int, ...]):
    """The up-to-2^d pyramid children of a set (bounds-checked)."""
    d = len(idx)
    for corner in np.ndindex(*(2,) * d):
        child = tuple(2 * idx[a] + corner[a] for a in range(d))
        if all(child[a] < child_shape[a] for a in range(d)):
            yield child


def speck_encode(values: np.ndarray, writer: BitWriter) -> int:
    """Encode signed integer coefficients; returns the number of planes."""
    values = np.asarray(values, dtype=np.int64)
    absint = np.abs(values)
    vmax = int(absint.max()) if absint.size else 0
    n_planes = vmax.bit_length()
    if n_planes == 0:
        return 0
    signs = values < 0
    pyramid = _build_pyramid(absint)
    shapes = [p.shape for p in pyramid]
    # plain nested structures for fast scalar access
    levels = [p.tolist() for p in pyramid]
    flat_abs = absint.ravel()
    strides = np.array([int(np.prod(values.shape[a + 1:])) for a in range(values.ndim)])

    def level_value(lvl: int, idx: tuple[int, ...]) -> int:
        node = levels[lvl]
        for i in idx:
            node = node[i]
        return node

    top = len(pyramid) - 1
    lis: list[tuple[int, tuple[int, ...]]] = [(top, (0,) * values.ndim)]
    lsp_flat: list[int] = []
    sign_list = signs.ravel().tolist()

    for k in range(n_planes - 1, -1, -1):
        thresh_shift = k
        new_lis: list[tuple[int, tuple[int, ...]]] = []
        new_lsp: list[int] = []
        work = lis
        i = 0
        while i < len(work):
            lvl, idx = work[i]
            i += 1
            sig = (level_value(lvl, idx) >> thresh_shift) != 0
            writer.write_bit(sig)
            if not sig:
                new_lis.append((lvl, idx))
                continue
            if lvl == 0:
                flat = int((np.array(idx) * strides).sum())
                writer.write_bit(sign_list[flat])
                new_lsp.append(flat)
            else:
                for child in _children(idx, shapes[lvl - 1]):
                    work.append((lvl - 1, child))
        # refinement of previously-significant coefficients (vectorized)
        if lsp_flat:
            arr = np.array(lsp_flat, dtype=np.int64)
            bits = (flat_abs[arr] >> thresh_shift) & 1
            writer.write_bool_array(bits.astype(np.uint8))
        lsp_flat.extend(new_lsp)
        lis = new_lis
    return n_planes


def speck_decode(shape: tuple[int, ...], n_planes: int, reader: BitReader,
                 stop_after: int | None = None) -> np.ndarray:
    """Inverse of :func:`speck_encode`.

    ``stop_after`` decodes only the first (most significant) k planes — the
    embedded-coding payoff: any prefix of the stream is a valid coarse
    reconstruction.
    """
    shape = tuple(shape)
    d = len(shape)
    if n_planes == 0:
        return np.zeros(shape, dtype=np.int64)
    # pyramid geometry only (shapes per level)
    shapes = [shape]
    cur = shape
    while any(n > 1 for n in cur):
        cur = tuple((n + 1) // 2 if n > 1 else 1 for n in cur)
        shapes.append(cur)
    top = len(shapes) - 1
    strides = np.array([int(np.prod(shape[a + 1:])) for a in range(d)])

    mag = np.zeros(int(np.prod(shape)), dtype=np.int64)
    neg = np.zeros(int(np.prod(shape)), dtype=bool)
    lis: list[tuple[int, tuple[int, ...]]] = [(top, (0,) * d)]
    lsp_flat: list[int] = []

    decoded = 0
    for k in range(n_planes - 1, -1, -1):
        if stop_after is not None and decoded >= stop_after:
            break
        decoded += 1
        new_lis: list[tuple[int, tuple[int, ...]]] = []
        new_lsp: list[int] = []
        work = lis
        i = 0
        while i < len(work):
            lvl, idx = work[i]
            i += 1
            sig = reader.read_bit()
            if not sig:
                new_lis.append((lvl, idx))
                continue
            if lvl == 0:
                flat = int((np.array(idx) * strides).sum())
                neg[flat] = bool(reader.read_bit())
                mag[flat] = 1 << k
                new_lsp.append(flat)
            else:
                for child in _children(idx, shapes[lvl - 1]):
                    work.append((lvl - 1, child))
        if lsp_flat:
            arr = np.array(lsp_flat, dtype=np.int64)
            bits = reader.read_bool_array(len(lsp_flat)).astype(np.int64)
            mag[arr] |= bits << k
        lsp_flat.extend(new_lsp)
        lis = new_lis
    out = np.where(neg, -mag, mag)
    return out.reshape(shape)
