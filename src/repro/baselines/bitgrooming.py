"""Bit Grooming [Zender, GMD 2016] — precision-trimming lossy compression.

One of the compressors the climate community evaluated against CliZ's
lineage (Underwood et al., DRBSD'22, cited as [17]/[30] in the paper).
Bit Grooming keeps a number of *significant decimal digits* (NSD) by
masking low-order mantissa bits, alternating **bit shave** (clear to 0) and
**bit set** (set to 1) across consecutive values so the quantization stays
statistically unbiased. The groomed floats compress well under a lossless
backend (our LZ77 here, like NCO's DEFLATE).

The error behaviour is *relative per value* (digits of precision), not an
absolute bound; :meth:`BitGrooming.compress` maps a requested relative
error bound to the equivalent number of kept mantissa bits.
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.encoding.lz import lz_compress, lz_decompress
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["BitGrooming", "groom", "bits_for_relative_error"]

_MANTISSA_BITS = 52  # float64 working precision


def bits_for_relative_error(rel: float) -> int:
    """Mantissa bits needed so per-value relative error <= ``rel``."""
    if not (0 < rel < 1):
        raise ValueError("relative error must be in (0, 1)")
    # keeping m mantissa bits gives relative error <= 2^-(m+1)
    m = int(np.ceil(-np.log2(rel) - 1))
    return int(np.clip(m, 1, _MANTISSA_BITS))


def groom(values: np.ndarray, keep_bits: int) -> np.ndarray:
    """Alternately shave/set the dropped mantissa bits (unbiased rounding)."""
    if not (1 <= keep_bits <= _MANTISSA_BITS):
        raise ValueError(f"keep_bits must be in 1..{_MANTISSA_BITS}")
    work = np.asarray(values, dtype=np.float64).ravel()
    bits = work.view(np.uint64).copy()
    drop = np.uint64(_MANTISSA_BITS - keep_bits)
    mask_clear = ~((np.uint64(1) << drop) - np.uint64(1))
    mask_set = (np.uint64(1) << drop) - np.uint64(1)
    shaved = bits & mask_clear
    setted = bits | mask_set
    out = np.where(np.arange(bits.size) % 2 == 0, shaved, setted)
    # never "set" bits on exact zeros (it would invent tiny values)
    out = np.where(bits == 0, bits, out)
    return out.view(np.float64).reshape(np.asarray(values).shape)


class BitGrooming:
    """NSD-style precision trimming + LZ backend (baseline)."""

    codec_name = "bitgroom"
    pointwise_bound = False  # the guarantee is relative-per-value

    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None,
                 keep_bits: int | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        if keep_bits is None:
            # translate the bound into per-value relative precision against
            # the largest magnitude (conservative for absolute bounds)
            eb = resolve_error_bound(work, abs_eb, rel_eb, mask)
            vals = np.abs(work[mask] if mask is not None else work)
            peak = float(vals.max()) or 1.0
            keep_bits = bits_for_relative_error(min(max(eb / peak, 2.0 ** -52), 0.5))
        groomed = groom(work, keep_bits)
        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "keep_bits": int(keep_bits),
        })
        container.add_section("data", lz_compress(groomed.tobytes()))
        return container.to_bytes()

    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not a BitGrooming stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        raw = lz_decompress(container.section("data"))
        work = np.frombuffer(raw, dtype=np.float64).reshape(shape).copy()
        return work.astype(np.dtype(header["dtype"]), copy=False)
