"""ZFP's block decorrelation, as an exactly reversible integer transform.

Real ZFP decorrelates each 4-point line with a near-orthogonal lifted
transform. We implement the same structure as a two-level integer
Walsh-Hadamard lift built from elementary steps of the form ``a ±= b >> 1``
/ ``a ±= b`` — each step modifies one lane from unchanged lanes, so the
whole transform inverts *exactly* in integer arithmetic (verified by
property tests). Coefficient magnitudes grow by at most 2 per level, i.e.
4x per dimension, which the compressor's guard bits account for.

The separable d-dimensional transform applies the 4-point lift along every
axis of each 4^d block; blocks are processed as a vectorized
``(n_blocks, 4, ..., 4)`` tensor.

Coefficients are then reordered by total sequency (sum of per-axis
frequencies), matching ZFP's fixed embedded-coding order: low-frequency
(high-energy) coefficients first.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "forward_lift_axis",
    "inverse_lift_axis",
    "forward_transform",
    "inverse_transform",
    "sequency_order",
    "AXIS_SEQUENCY",
]

#: Per-lane frequency index after the 4-point lift (x=DC, z=low, y=mid, w=high).
AXIS_SEQUENCY = np.array([0, 2, 1, 3], dtype=np.int64)


def forward_lift_axis(arr: np.ndarray, axis: int) -> None:
    """In-place 4-point forward lift along ``axis`` (length must be 4)."""
    if arr.shape[axis] != 4:
        raise ValueError("lift axis must have length 4")
    ix = tuple(slice(None) if a != axis else 0 for a in range(arr.ndim))
    iy = tuple(slice(None) if a != axis else 1 for a in range(arr.ndim))
    iz = tuple(slice(None) if a != axis else 2 for a in range(arr.ndim))
    iw = tuple(slice(None) if a != axis else 3 for a in range(arr.ndim))
    # level 1: Haar pairs (x,y) and (z,w)
    arr[iy] -= arr[ix]
    arr[ix] += arr[iy] >> 1
    arr[iw] -= arr[iz]
    arr[iz] += arr[iw] >> 1
    # level 2: on the two averages (x,z) and the two details (y,w)
    arr[iz] -= arr[ix]
    arr[ix] += arr[iz] >> 1
    arr[iw] -= arr[iy]
    arr[iy] += arr[iw] >> 1


def inverse_lift_axis(arr: np.ndarray, axis: int) -> None:
    """Exact inverse of :func:`forward_lift_axis` (steps reversed)."""
    if arr.shape[axis] != 4:
        raise ValueError("lift axis must have length 4")
    ix = tuple(slice(None) if a != axis else 0 for a in range(arr.ndim))
    iy = tuple(slice(None) if a != axis else 1 for a in range(arr.ndim))
    iz = tuple(slice(None) if a != axis else 2 for a in range(arr.ndim))
    iw = tuple(slice(None) if a != axis else 3 for a in range(arr.ndim))
    arr[iy] -= arr[iw] >> 1
    arr[iw] += arr[iy]
    arr[ix] -= arr[iz] >> 1
    arr[iz] += arr[ix]
    arr[iz] -= arr[iw] >> 1
    arr[iw] += arr[iz]
    arr[ix] -= arr[iy] >> 1
    arr[iy] += arr[ix]


def forward_transform(blocks: np.ndarray, ndim: int) -> np.ndarray:
    """Transform a ``(n_blocks, 4^d)`` int64 matrix in place; returns it."""
    shaped = blocks.reshape((blocks.shape[0],) + (4,) * ndim)
    for axis in range(1, ndim + 1):
        forward_lift_axis(shaped, axis)
    return blocks


def inverse_transform(blocks: np.ndarray, ndim: int) -> np.ndarray:
    """Exact inverse of :func:`forward_transform` (in place)."""
    shaped = blocks.reshape((blocks.shape[0],) + (4,) * ndim)
    for axis in range(ndim, 0, -1):
        inverse_lift_axis(shaped, axis)
    return blocks


def sequency_order(ndim: int) -> np.ndarray:
    """Flat coefficient permutation sorted by total sequency (stable)."""
    grids = np.meshgrid(*[AXIS_SEQUENCY] * ndim, indexing="ij")
    total = sum(grids).ravel()
    return np.argsort(total, kind="stable").astype(np.int64)
