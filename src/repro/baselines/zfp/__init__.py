"""ZFP baseline: transform-based fixed-accuracy compression."""

from repro.baselines.zfp.compressor import ZFP

__all__ = ["ZFP"]
