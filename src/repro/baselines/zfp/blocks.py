"""4^d block partitioning for the ZFP baseline.

ZFP operates on independent blocks of 4 values per dimension. Partial
blocks at array edges are padded by replicating the last valid sample
(value-preserving and cheap to decorrelate), and the padding is discarded
on reassembly. All blocks are gathered into a single ``(n_blocks, 4^d)``
matrix so the transform and bit-plane extraction stages run vectorized
across every block at once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BLOCK_SIDE", "gather_blocks", "scatter_blocks", "block_grid_shape"]

BLOCK_SIDE = 4


def block_grid_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Number of blocks along each dimension."""
    return tuple((n + BLOCK_SIDE - 1) // BLOCK_SIDE for n in shape)


def _padded_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(g * BLOCK_SIDE for g in block_grid_shape(shape))


def gather_blocks(data: np.ndarray) -> np.ndarray:
    """Return a ``(n_blocks, 4^d)`` matrix of edge-padded blocks (C order)."""
    shape = data.shape
    d = data.ndim
    padded = np.empty(_padded_shape(shape), dtype=data.dtype)
    padded[tuple(slice(0, n) for n in shape)] = data
    # replicate the last valid hyperplane into the padding, axis by axis
    for axis, n in enumerate(shape):
        pn = padded.shape[axis]
        if pn > n:
            src = tuple(slice(None) if a != axis else slice(n - 1, n) for a in range(d))
            dst = tuple(slice(None) if a != axis else slice(n, pn) for a in range(d))
            padded[dst] = padded[src]
    grid = block_grid_shape(shape)
    # reshape to (g0, 4, g1, 4, ...) then bring block axes forward
    interleaved = padded.reshape(
        tuple(v for g in grid for v in (g, BLOCK_SIDE))
    )
    order = tuple(range(0, 2 * d, 2)) + tuple(range(1, 2 * d, 2))
    blocks = np.transpose(interleaved, order).reshape(int(np.prod(grid)), BLOCK_SIDE ** d)
    return np.ascontiguousarray(blocks)


def scatter_blocks(blocks: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`gather_blocks`: reassemble and strip padding."""
    d = len(shape)
    grid = block_grid_shape(shape)
    interleaved = blocks.reshape(grid + (BLOCK_SIDE,) * d)
    # invert the transpose: axes currently (g0..gd-1, b0..bd-1)
    order = []
    for i in range(d):
        order.extend([i, d + i])
    padded = np.transpose(interleaved, order).reshape(_padded_shape(shape))
    return np.ascontiguousarray(padded[tuple(slice(0, n) for n in shape)])
