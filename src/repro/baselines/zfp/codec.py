"""ZFP embedded bit-plane coding: negabinary + group-testing.

Transformed block coefficients are mapped to negabinary (so truncating low
bit planes refines values towards zero from either sign), transposed into
per-block bit-plane masks, and coded MSB-plane-first with ZFP's embedded
scheme: for each plane, the bits of already-significant coefficients are
emitted verbatim, then the insignificant tail is coded by group tests
(one bit asks "any significant coefficient left?", followed by a unary
scan up to the next one-bit). The significant-prefix length ``n`` carries
across planes, which is what makes the stream embedded.

Plane masks are precomputed vectorized for all blocks; only the
data-dependent bit emission runs in a scalar loop.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter

__all__ = [
    "to_negabinary",
    "from_negabinary",
    "plane_masks",
    "encode_block_planes",
    "decode_block_planes",
]

_NB_MASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def to_negabinary(values: np.ndarray) -> np.ndarray:
    """Map int64 two's-complement values to unsigned negabinary (uint64)."""
    u = values.astype(np.int64).view(np.uint64)
    return (u + _NB_MASK) ^ _NB_MASK


def from_negabinary(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_negabinary`."""
    u = values.astype(np.uint64)
    return ((u ^ _NB_MASK) - _NB_MASK).view(np.int64)


def plane_masks(coeffs_nb: np.ndarray, n_planes: int) -> np.ndarray:
    """Per-(block, plane) significance masks.

    ``coeffs_nb`` is (n_blocks, block_size) negabinary. Returns a
    (n_blocks, n_planes) uint64 matrix where bit *i* of ``[b, k]`` is bit
    plane ``k`` of coefficient *i* in block *b* (requires block_size <= 64,
    true for every 1D-3D ZFP block).
    """
    n_blocks, size = coeffs_nb.shape
    if size > 64:
        raise ValueError("plane_masks supports at most 64 coefficients per block")
    out = np.zeros((n_blocks, n_planes), dtype=np.uint64)
    shifts = np.arange(size, dtype=np.uint64)[None, :]
    for k in range(n_planes):
        bits = (coeffs_nb >> np.uint64(k)) & np.uint64(1)
        out[:, k] = (bits << shifts).sum(axis=1, dtype=np.uint64)
    return out


def encode_block_planes(planes: list[int], size: int, n_planes: int,
                        writer: BitWriter, kmin: int = 0) -> None:
    """Embedded group-testing encoder for one block.

    ``planes[k]`` is the bit mask of plane ``k`` (k = n_planes-1 is the
    MSB plane, encoded first). Bit *i* of a mask is coefficient *i*'s bit.
    Planes below ``kmin`` are dropped (the fixed-accuracy cutoff).
    """
    n = 0
    for k in range(n_planes - 1, kmin - 1, -1):
        x = planes[k]
        # verbatim bits of the already-significant prefix
        if n:
            writer.write(x & ((1 << n) - 1), n)
            x >>= n
        # group-test the remainder: "anything left?" + unary scan to next 1
        m = n
        while m < size:
            if x == 0:
                writer.write_bit(0)
                break
            writer.write_bit(1)
            while True:
                bit = x & 1
                x >>= 1
                m += 1
                writer.write_bit(bit)
                if bit or m == size:
                    break
        n = m


def decode_block_planes(size: int, n_planes: int, reader: BitReader,
                        kmin: int = 0) -> list[int]:
    """Inverse of :func:`encode_block_planes`; returns plane masks."""
    planes = [0] * n_planes
    n = 0
    for k in range(n_planes - 1, kmin - 1, -1):
        x = reader.read(n) if n else 0
        m = n
        while m < size:
            if not reader.read_bit():
                break
            while True:
                bit = reader.read_bit()
                if bit:
                    x |= 1 << m
                m += 1
                if bit or m == size:
                    break
        planes[k] = x
        n = m
    return planes
