"""ZFP fixed-accuracy compressor facade.

Per block: block-floating-point scaling against the block's maximum
exponent, the reversible integer decorrelation transform, total-sequency
reordering, negabinary mapping, and embedded group-testing coding of bit
planes down to a tolerance-derived cutoff. Everything except the
data-dependent bit emission is vectorized across all blocks.

Error accounting: with guard bits for transform growth, truncating bit
planes below ``kmin`` leaves each coefficient within ~2^kmin integer ULPs;
the inverse transform redistributes that across the block. ``kmin`` is
chosen ``_SAFETY_PLANES`` planes below the tolerance so the pointwise bound
holds with margin (as in real ZFP's accuracy mode, the tolerance is
honoured conservatively — typical errors land well below it).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.zfp.blocks import BLOCK_SIDE, gather_blocks, scatter_blocks
from repro.baselines.zfp.codec import (
    decode_block_planes,
    encode_block_planes,
    from_negabinary,
    plane_masks,
    to_negabinary,
)
from repro.baselines.zfp.transform import (
    forward_transform,
    inverse_transform,
    sequency_order,
)
from repro.core.compressor import resolve_error_bound
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["ZFP"]

#: Fractional precision of the block-fixed-point representation.
_PRECISION = 44
#: Extra planes kept below the tolerance cutoff (transform error margin).
_SAFETY_PLANES = 3
#: Exponent bias for the per-block emax field (12 bits).
_EMAX_BIAS = 2048
_EMAX_BITS = 12


class ZFP:
    """ZFP-style transform compressor in fixed-accuracy mode (baseline)."""

    codec_name = "zfp"

    # ------------------------------------------------------------------ #
    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data, max_ndim=4)
        if arr.ndim == 4:
            # ZFP's common handling of 4D fields: fold the two leading axes
            # and compress as 3D (the header keeps the original shape).
            orig_shape = arr.shape
            folded = arr.reshape(arr.shape[0] * arr.shape[1], arr.shape[2], arr.shape[3])
            fmask = mask.reshape(folded.shape) if mask is not None else None
            blob = self.compress(folded, abs_eb=abs_eb, rel_eb=rel_eb, mask=fmask)
            container = Container.from_bytes(blob)
            container.header["orig_shape"] = list(orig_shape)
            return container.to_bytes()
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        tol = resolve_error_bound(work, abs_eb, rel_eb, mask)
        d = work.ndim
        size = BLOCK_SIDE ** d
        order = sequency_order(d)

        blocks = gather_blocks(work)  # (n_blocks, 4^d) float64
        n_blocks = blocks.shape[0]
        absmax = np.abs(blocks).max(axis=1)
        nonzero = absmax > 0
        emax = np.zeros(n_blocks, dtype=np.int64)
        if nonzero.any():
            emax[nonzero] = np.frexp(absmax[nonzero])[1]  # absmax < 2^emax

        # Block-fixed-point: |value| < 2^emax -> |int| < 2^_PRECISION.
        scale = np.ldexp(1.0, (_PRECISION - emax).astype(np.int64))
        ints = np.rint(blocks * scale[:, None]).astype(np.int64)
        forward_transform(ints, d)
        ints = ints[:, order]
        nb = to_negabinary(ints)

        # Tolerance -> per-block minimum plane. Integer ULP = 2^(emax - P);
        # keep planes with weight >= tol -> kmin ~ log2(tol) + P - emax.
        with np.errstate(divide="ignore"):
            kmin = np.floor(np.log2(tol)).astype(np.int64) + _PRECISION - emax - _SAFETY_PLANES
        n_planes_full = _PRECISION + 2 * d + 2  # guard bits: 4x growth/dim + sign
        kmin = np.clip(kmin, 0, n_planes_full)
        masks = plane_masks(nb, n_planes_full)

        writer = BitWriter()
        masks_list = masks.tolist()
        kmin_list = kmin.tolist()
        for b in range(n_blocks):
            if not nonzero[b]:
                writer.write_bit(0)
                continue
            writer.write_bit(1)
            writer.write(int(emax[b]) + _EMAX_BIAS, _EMAX_BITS)
            km = kmin_list[b]
            if km >= n_planes_full:
                continue
            encode_block_planes(masks_list[b], size, n_planes_full, writer, kmin=km)

        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "tol": tol,
            "precision": _PRECISION,
            "n_planes": n_planes_full,
            "bit_length": writer.bit_length,
        })
        container.add_section("stream", writer.getvalue())
        return container.to_bytes()

    # ------------------------------------------------------------------ #
    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not a ZFP stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        tol = header["tol"]
        precision = header["precision"]
        n_planes_full = header["n_planes"]
        d = len(shape)
        size = BLOCK_SIDE ** d
        order = sequency_order(d)
        inv_order = np.argsort(order)

        reader = BitReader(container.section("stream"), bit_length=header["bit_length"])
        from repro.baselines.zfp.blocks import block_grid_shape
        n_blocks = int(np.prod(block_grid_shape(shape)))
        planes_mat = np.zeros((n_blocks, n_planes_full), dtype=np.uint64)
        emax = np.zeros(n_blocks, dtype=np.int64)
        log_tol = int(np.floor(np.log2(tol)))
        for b in range(n_blocks):
            if not reader.read_bit():
                continue
            emax[b] = reader.read(_EMAX_BITS) - _EMAX_BIAS
            km = log_tol + precision - int(emax[b]) - _SAFETY_PLANES
            km = min(max(km, 0), n_planes_full)
            if km >= n_planes_full:
                continue
            planes = decode_block_planes(size, n_planes_full, reader, kmin=km)
            planes_mat[b, km:] = planes[km:]
        # reassemble negabinary coefficients, vectorized across blocks
        nb = np.zeros((n_blocks, size), dtype=np.uint64)
        shifts = np.arange(size, dtype=np.uint64)[None, :]
        for k in range(n_planes_full):
            col = planes_mat[:, k]
            if not col.any():
                continue
            nb |= ((col[:, None] >> shifts) & np.uint64(1)) << np.uint64(k)

        ints = from_negabinary(nb)
        ints = ints[:, inv_order]
        inverse_transform(ints, d)
        scale = np.ldexp(1.0, (emax - precision).astype(np.int64))
        blocks = ints.astype(np.float64) * scale[:, None]
        work = scatter_blocks(blocks, shape)
        if "orig_shape" in header:
            work = work.reshape(tuple(header["orig_shape"]))
        return work.astype(np.dtype(header["dtype"]), copy=False)
