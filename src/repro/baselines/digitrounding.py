"""Digit Rounding — adaptive power-of-two quantization of floats.

The second precision-trimming compressor in the community evaluation the
paper cites (Underwood et al., DRBSD'22). Unlike Bit Grooming's fixed
mantissa mask, Digit Rounding rounds each value to a power-of-two quantum
chosen from the requested *absolute* bound, which (a) gives a true
pointwise error bound and (b) aligns the binary representations of nearby
values so the lossless backend finds long matches.
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container
from repro.obs import traced_compress, traced_decompress
from repro.encoding.lz import lz_compress, lz_decompress
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["DigitRounding", "round_to_quantum"]


def round_to_quantum(values: np.ndarray, abs_eb: float) -> np.ndarray:
    """Round to the largest power-of-two quantum with error <= ``abs_eb``."""
    if abs_eb <= 0 or not np.isfinite(abs_eb):
        raise ValueError("abs_eb must be finite and positive")
    quantum = 2.0 ** np.floor(np.log2(2.0 * abs_eb))  # rounding error <= q/2 <= eb
    work = np.asarray(values, dtype=np.float64)
    with np.errstate(invalid="ignore", over="ignore"):
        rounded = np.rint(work / quantum) * quantum
    # huge values (e.g. CESM fills) can overflow the division: keep them
    rounded = np.where(np.isfinite(rounded), rounded, work)
    return rounded


class DigitRounding:
    """Error-bounded power-of-two rounding + LZ backend (baseline)."""

    codec_name = "digitround"
    pointwise_bound = True

    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        mask = check_mask(mask, work.shape)
        eb = resolve_error_bound(work, abs_eb, rel_eb, mask)
        rounded = round_to_quantum(work, eb)
        container = Container(self.codec_name, {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "eb": eb,
        })
        container.add_section("data", lz_compress(rounded.tobytes()))
        return container.to_bytes()

    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != self.codec_name:
            raise ValueError(f"not a DigitRounding stream (codec {container.codec!r})")
        header = container.header
        shape = tuple(header["shape"])
        raw = lz_decompress(container.section("data"))
        work = np.frombuffer(raw, dtype=np.float64).reshape(shape).copy()
        return work.astype(np.dtype(header["dtype"]), copy=False)
