"""Streaming aggregation primitives for live telemetry.

The metrics registry (:mod:`repro.obs.metrics`) keeps exact totals; this
module adds the *time-sensitive* views a scrape endpoint needs while a
run is still in flight, all in O(1) memory per series:

* :class:`EwmaMeter` — an exponentially weighted moving-average rate
  (jobs/s, MB/s). The decay is continuous in elapsed time, so a meter
  that stops receiving marks decays toward zero on its own.
* :class:`RingWindow` — a bounded ring buffer of ``(t, value)`` samples
  pruned to a sliding time window (recent queue depths, recent cell
  durations) with sum/mean/rate over the window.
* :class:`P2Quantile` — the Jain & Chlamtac P² streaming quantile
  estimator: five markers per quantile, no stored observations.
* :class:`LatencySummary` — p50/p95/p99 (plus count/sum/min/max) of a
  latency stream, built from three :class:`P2Quantile` instances. This
  is what gives ``/metrics`` span-latency quantiles *without* storing
  spans.
* :class:`LiveRegistry` — named instances of the above, created on first
  use, snapshot as plain dicts. Every :class:`~repro.obs.trace.Run`
  carries one as ``run.live``.

All instruments are thread-safe (the dispatch loop, pool-result thread,
and the metrics server's event loop all touch them) and take an optional
explicit ``now`` so tests — and the simulated-clock WAN model — control
time; the default clock is ``time.monotonic``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

__all__ = [
    "EwmaMeter",
    "RingWindow",
    "P2Quantile",
    "LatencySummary",
    "LiveRegistry",
    "DEFAULT_QUANTILES",
]

#: Quantiles a :class:`LatencySummary` tracks by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class EwmaMeter:
    """Continuous-decay EWMA rate meter (events or bytes per second).

    ``mark(n)`` accumulates; the rate folds the accumulated count in with
    weight ``1 - exp(-dt/tau)`` whenever time has advanced, so the meter
    converges to the true steady rate with time constant ``tau`` seconds
    and decays toward zero when marks stop.
    """

    def __init__(self, tau: float = 30.0, *, clock=time.monotonic) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = float(tau)
        self._clock = clock
        self._lock = threading.Lock()
        self._rate = 0.0
        self._pending = 0.0
        self._t_last: float | None = None
        self.total = 0.0

    def mark(self, n: float = 1.0, now: float | None = None) -> None:
        if n < 0:
            raise ValueError("marks must be non-negative")
        now = self._clock() if now is None else float(now)
        with self._lock:
            self.total += n
            if self._t_last is None:
                self._t_last = now
                self._pending += n
                return
            self._tick(now)
            self._pending += n

    def rate(self, now: float | None = None) -> float:
        """Current smoothed rate in units/second."""
        now = self._clock() if now is None else float(now)
        with self._lock:
            if self._t_last is None:
                return 0.0
            self._tick(now)
            return self._rate

    def _tick(self, now: float) -> None:
        """Fold pending marks into the rate over the elapsed interval."""
        dt = now - self._t_last
        if dt <= 0.0:
            return
        inst = self._pending / dt
        alpha = 1.0 - math.exp(-dt / self.tau)
        self._rate += alpha * (inst - self._rate)
        self._pending = 0.0
        self._t_last = now

    def to_record(self) -> dict:
        # rate and total must come from one critical section, or a
        # concurrent mark() between the two reads yields a torn snapshot
        now = self._clock()
        with self._lock:
            if self._t_last is not None:
                self._tick(now)
            return {"type": "meter", "rate": self._rate, "total": self.total,
                    "tau": self.tau}


class RingWindow:
    """Sliding-window ring buffer of ``(t, value)`` samples.

    Bounded two ways: samples older than ``window`` seconds are pruned,
    and at most ``maxlen`` samples are kept (the ring), so a hot loop can
    ``add`` unconditionally without growing memory.
    """

    def __init__(self, window: float = 60.0, maxlen: int = 4096, *,
                 clock=time.monotonic) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.window = float(window)
        self._clock = clock
        self._samples: deque[tuple[float, float]] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def add(self, value: float, now: float | None = None) -> None:
        now = self._clock() if now is None else float(now)
        with self._lock:
            self._samples.append((now, float(value)))
            self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def values(self, now: float | None = None) -> list[float]:
        now = self._clock() if now is None else float(now)
        with self._lock:
            self._prune(now)
            return [v for _, v in self._samples]

    def count(self, now: float | None = None) -> int:
        return len(self.values(now))

    def sum(self, now: float | None = None) -> float:  # noqa: A003
        return float(sum(self.values(now)))

    def mean(self, now: float | None = None) -> float | None:
        vals = self.values(now)
        return sum(vals) / len(vals) if vals else None

    def rate(self, now: float | None = None) -> float:
        """Samples per second over the window."""
        return self.count(now) / self.window

    def last(self) -> float | None:
        with self._lock:
            return self._samples[-1][1] if self._samples else None

    def to_record(self) -> dict:
        vals = self.values()
        return {"type": "window", "window": self.window, "count": len(vals),
                "sum": sum(vals), "mean": sum(vals) / len(vals) if vals else None,
                "last": vals[-1] if vals else None}


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator (one quantile).

    Maintains five markers whose heights approximate the quantile by
    piecewise-parabolic interpolation — O(1) memory and per-observation
    cost, no stored samples. Accuracy on smooth distributions is well
    under a percent of the value range after a few hundred observations
    (asserted against ``numpy.percentile`` in the test suite).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = float(q)
        self._initial: list[float] = []
        # marker heights, positions (1-based), desired positions, increments
        self._heights: list[float] = []
        self._pos: list[float] = []
        self._want: list[float] = []
        self._dwant = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self._heights:
            self._update(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initial.sort()
            self._heights = list(self._initial)
            self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
            q = self.q
            self._want = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                          3.0 + 2.0 * q, 5.0]

    def _update(self, value: float) -> None:
        h, pos, want = self._heights, self._pos, self._want
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            # cell k: the marker interval h[k] <= value < h[k+1]
            k = 3
            for i in range(4):
                if value < h[i + 1]:
                    k = i
                    break
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            want[i] += self._dwant[i]
        # adjust the three interior markers toward their desired positions
        for i in range(1, 4):
            d = want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
               (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._pos
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float | None:
        """The current quantile estimate (None before any observation)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return None
        ordered = sorted(self._initial)
        # exact quantile while we are still below 5 samples
        idx = min(len(ordered) - 1, max(0, round(self.q * (len(ordered) - 1))))
        return ordered[int(idx)]


class LatencySummary:
    """Streaming p50/p95/p99 + count/sum/min/max of a duration stream."""

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.quantiles = tuple(float(q) for q in quantiles)
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for est in self._estimators.values():
                est.observe(value)

    def quantile(self, q: float) -> float | None:
        with self._lock:
            est = self._estimators.get(float(q))
            if est is None:
                raise KeyError(f"summary does not track quantile {q}")
            return est.value

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def to_record(self) -> dict:
        with self._lock:
            return {
                "type": "summary",
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "quantiles": {f"p{q * 100:g}": self._estimators[q].value
                              for q in self.quantiles},
            }


class LiveRegistry:
    """Named live instruments, created on first use (like MetricsRegistry).

    Unlike the exact metrics registry, live aggregates are *process-local
    views* — P² markers and EWMA states cannot be merged losslessly, so
    pool workers do not ship them back; the dispatching process observes
    job-level events itself (latency on future completion, queue depth in
    the dispatch loop), which is where the operationally meaningful
    numbers live anyway.
    """

    def __init__(self, *, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._meters: dict[str, EwmaMeter] = {}
        self._windows: dict[str, RingWindow] = {}
        self._summaries: dict[str, LatencySummary] = {}

    def _get(self, table: dict, name: str, factory):
        with self._lock:
            inst = table.get(name)
            if inst is None:
                inst = table[name] = factory()
            return inst

    def meter(self, name: str, tau: float = 30.0) -> EwmaMeter:
        return self._get(self._meters, name,
                         lambda: EwmaMeter(tau, clock=self._clock))

    def window(self, name: str, window: float = 60.0,
               maxlen: int = 4096) -> RingWindow:
        return self._get(self._windows, name,
                         lambda: RingWindow(window, maxlen, clock=self._clock))

    def summary(self, name: str,
                quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> LatencySummary:
        return self._get(self._summaries, name,
                         lambda: LatencySummary(quantiles))

    def snapshot(self) -> dict[str, dict]:
        """All live aggregates as ``{name: record}`` plain dicts.

        Meters, windows, and summaries live in separate tables, so one
        name may exist in several kinds; the first keeps the bare name
        and later kinds get a ``<name>.<kind>`` key (with ``name`` in
        the record matching the key) so nothing is silently shadowed.
        """
        with self._lock:
            items = ([(n, m) for n, m in self._meters.items()]
                     + [(n, w) for n, w in self._windows.items()]
                     + [(n, s) for n, s in self._summaries.items()])
        items.sort(key=lambda item: (item[0], type(item[1]).__name__))
        out: dict[str, dict] = {}
        for name, inst in items:
            rec = inst.to_record()
            key = name if name not in out else f"{name}.{rec['type']}"
            out[key] = {"name": key, **rec}
        return out
