"""Offline telemetry analysis: ``python -m repro obs <subcommand>``.

Post-hoc counterpart of the live ``/metrics`` endpoint — it ingests the
telemetry files the repo already produces (trace/metrics JSONL from
``--trace-out`` / ``--metrics-out``, a sweep's ``ledger.jsonl``, and
``BENCH_*.json`` benchmark documents) and answers the operational
questions offline:

* ``report FILE...``      — per-stage throughput tables (calls, total
  time, exact p50/p95/p99, MB/s) from trace files; metric / ledger /
  bench summaries for the other kinds. Every line is schema-validated;
  violations exit non-zero (CI runs this over uploaded artifacts).
* ``top FILE``            — the N slowest spans.
* ``critical-path FILE``  — the heaviest root-to-leaf span chain of a
  run: where the wall-clock actually went.
* ``diff BASELINE CURRENT`` — machine-speed-normalized regression diff
  between two benchmark/telemetry files. The verdict logic
  (:func:`normalized_regressions`) is the *same code* the
  ``bench_codec`` CI gate calls, so ``repro obs diff BENCH_codec.json
  new.json`` reproduces the gate's pass/fail exactly.

File kinds are sniffed from content, not extension, so a sweep directory
(``ledger.jsonl`` inside), a bench JSON, and JSONL telemetry can be
mixed in one ``report`` invocation.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

__all__ = [
    "classify_file",
    "load_any",
    "normalized_regressions",
    "throughput_series",
    "stage_table",
    "critical_path",
    "add_arguments",
    "run_from_args",
    "main",
]


# ---------------------------------------------------------------------- #
# Ingestion: sniff + load any of the repo's telemetry file kinds.

def classify_file(path) -> str:
    """One of ``trace`` / ``metrics`` / ``ledger`` / ``bench`` / ``unknown``.

    Directories holding a ``ledger.jsonl`` classify as ``ledger`` (the
    sweep dir is the natural handle). Content-based: the first JSON
    object decides.
    """
    path = Path(path)
    if path.is_dir():
        return "ledger" if (path / "ledger.jsonl").exists() else "unknown"
    # sniff from the first non-blank line only — trace JSONL files can be
    # huge and load_any reads them anyway, so don't slurp the file twice
    first_line = ""
    with path.open("r", errors="replace") as fh:
        for line in fh:
            if line.strip():
                first_line = line.strip()
                break
    if not first_line or first_line[0] != "{":
        return "unknown"
    try:
        rec = json.loads(first_line)
    except json.JSONDecodeError:
        # a multi-line pretty-printed JSON document (bench output) is the
        # one case that genuinely needs the full text
        try:
            doc = json.loads(path.read_text(errors="replace"))
        except json.JSONDecodeError:
            return "unknown"
        return "bench" if isinstance(doc, dict) and (
            "results" in doc or "smoke_baseline" in doc) else "unknown"
    if rec.get("type") == "span":
        return "trace"
    if rec.get("type") in ("counter", "gauge", "histogram"):
        return "metrics"
    if rec.get("rec") in ("cell", "event"):
        return "ledger"
    if isinstance(rec, dict) and ("results" in rec or "smoke_baseline" in rec):
        return "bench"  # bench document serialized on a single line
    return "unknown"


def load_any(path) -> tuple[str, object]:
    """``(kind, payload)``: records list for JSONL kinds, dict for bench.

    Trace and metrics lines are schema-validated on load — a malformed
    or future-versioned line raises ``ValueError`` (the CLI maps that to
    a non-zero exit).
    """
    from repro.obs.sinks import (
        load_jsonl,
        validate_metrics_line,
        validate_trace_line,
    )

    kind = classify_file(path)
    path = Path(path)
    if kind == "trace":
        records = load_jsonl(path)
        for rec in records:
            validate_trace_line(rec)
        return kind, records
    if kind == "metrics":
        records = load_jsonl(path)
        for rec in records:
            validate_metrics_line(rec)
        return kind, records
    if kind == "ledger":
        ledger = path / "ledger.jsonl" if path.is_dir() else path
        return kind, load_jsonl(ledger)
    if kind == "bench":
        return kind, json.loads(path.read_text())
    raise ValueError(f"{path}: unrecognized telemetry file "
                     "(not trace/metrics JSONL, ledger.jsonl, or bench JSON)")


# ---------------------------------------------------------------------- #
# Aggregations.

def _percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list (exact, offline)."""
    if not sorted_vals:
        raise ValueError("no values")
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[int(idx)]


def stage_table(spans: list[dict]) -> list[dict]:
    """Per-path aggregate rows from span records, heaviest total first."""
    by_path: dict[str, list[dict]] = {}
    for rec in spans:
        by_path.setdefault(rec["path"], []).append(rec)
    rows = []
    for stage_path, recs in by_path.items():
        durs = sorted(float(r["dur"]) for r in recs)
        total = sum(durs)
        nbytes = sum(int(r.get("nbytes", 0)) for r in recs)
        errors = sum(1 for r in recs if r.get("status") == "error")
        rows.append({
            "path": stage_path,
            "calls": len(recs),
            "errors": errors,
            "total_s": total,
            "mean_ms": total / len(recs) * 1e3,
            "p50_ms": _percentile(durs, 0.50) * 1e3,
            "p95_ms": _percentile(durs, 0.95) * 1e3,
            "p99_ms": _percentile(durs, 0.99) * 1e3,
            "nbytes": nbytes,
            "mb_s": (nbytes / total / 1e6) if total > 0 and nbytes else None,
        })
    rows.sort(key=lambda r: -r["total_s"])
    return rows


def critical_path(spans: list[dict]) -> list[dict]:
    """The root-to-leaf chain maximizing summed duration.

    Spans form a forest via ``parent`` ids; the critical path is the
    chain a latency hunter should walk first. Returns the chain's span
    records, root first. Trace files are untrusted input: a cyclic
    ``parent`` graph raises ``ValueError`` (the CLI's schema-violation
    exit), and the walk is iterative so arbitrarily deep chains cannot
    blow the recursion limit.
    """
    if not spans:
        return []
    by_id = {rec["id"]: rec for rec in spans}
    children: dict[str, list[dict]] = {}
    roots = []
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)

    # best[id] = (chain weight from this span down, rec, heaviest child id)
    best: dict[str, tuple[float, dict, str | None]] = {}

    def resolve(root: dict) -> float:
        # explicit-stack post-order: children resolve before their parent
        stack = [(root, False)]
        in_flight: set[str] = set()
        while stack:
            rec, expanded = stack.pop()
            span_id = rec["id"]
            if not expanded:
                if span_id in best:
                    continue
                if span_id in in_flight:
                    raise ValueError(
                        f"cycle in span parent links at id {span_id!r}")
                in_flight.add(span_id)
                stack.append((rec, True))
                for kid in children.get(span_id, ()):
                    if kid["id"] not in best:
                        stack.append((kid, False))
            else:
                in_flight.discard(span_id)
                tail_w, tail_id = 0.0, None
                for kid in children.get(span_id, ()):
                    w = best[kid["id"]][0]
                    if w > tail_w:
                        tail_w, tail_id = w, kid["id"]
                best[span_id] = (float(rec["dur"]) + tail_w, rec, tail_id)
        return best[root["id"]][0]

    best_root, weight = None, 0.0
    for root in roots:
        w = resolve(root)
        if w > weight:
            weight, best_root = w, root
    if best_root is None:
        return []
    chain: list[dict] = []
    next_id: str | None = best_root["id"]
    while next_id is not None:
        _, rec, next_id = best[next_id]
        chain.append(rec)
    return chain


# ---------------------------------------------------------------------- #
# Machine-normalized regression diff (shared with the bench_codec gate).

def normalized_regressions(ratios: list[tuple[str, float]],
                           tolerance: float) -> list[str]:
    """Failure messages for rows regressing beyond the normalized floor.

    ``ratios`` are ``(label, current/baseline)`` throughput ratios. The
    median ratio is taken as the machine-speed factor — a uniformly
    faster or slower machine moves every ratio together and passes; a
    single path slower than ``(1 - tolerance) * median`` is a genuine
    regression and fails. This is the ``bench_codec.py`` CI gate verdict,
    factored out so ``repro obs diff`` reproduces it bit-for-bit.
    """
    if not ratios:
        return ["regression gate: no comparable rows between current run "
                "and baseline (codec/dataset sets disjoint?)"]
    median = statistics.median(r for _, r in ratios)
    floor = (1.0 - tolerance) * median
    return [
        f"{label}: {ratio:.2f}x vs baseline is below the gate floor "
        f"{floor:.2f}x (median machine factor {median:.2f}x, "
        f"tolerance {tolerance:.0%})"
        for label, ratio in ratios if ratio < floor
    ]


def throughput_series(path) -> dict[str, float]:
    """``{label: MB/s}`` throughput series from a bench or metrics file.

    Bench JSON rows contribute ``codec/dataset/compress_mb_s`` (and
    decompress); metrics JSONL contributes every gauge whose name ends in
    ``_mb_s`` or ``.mb_s``. For bench documents with both a full-run
    section and a ``smoke_baseline``, the section matching the *other*
    file is chosen by the diff command.
    """
    kind, payload = load_any(path)
    series: dict[str, float] = {}
    if kind == "bench":
        for row in _bench_rows(payload, smoke=None):
            for metric in ("compress_mb_s", "decompress_mb_s"):
                if row.get(metric):
                    series[f"{row['codec']}/{row['dataset']}/{metric}"] = \
                        float(row[metric])
    elif kind == "metrics":
        for rec in payload:
            name = rec["name"]
            if rec["type"] == "gauge" and rec["value"] is not None and \
                    (name.endswith("_mb_s") or name.endswith(".mb_s")):
                series[name] = float(rec["value"])
    else:
        raise ValueError(f"{path}: diff needs a bench JSON or metrics JSONL "
                         f"file, got {kind}")
    return series


def _bench_rows(doc: dict, smoke: bool | None) -> list[dict]:
    """Result rows of a bench document, honoring the smoke section.

    ``smoke=None`` auto-detects from the document's own config;
    ``smoke=True`` prefers the committed ``smoke_baseline`` section —
    exactly what the CI gate compares against.
    """
    if smoke is None:
        smoke = bool(doc.get("config", {}).get("smoke"))
    if smoke and isinstance(doc.get("smoke_baseline"), dict):
        return doc["smoke_baseline"].get("results", [])
    return doc.get("results", [])


def diff_files(baseline, current, tolerance: float = 0.20) -> tuple[list[str], int]:
    """``(messages, n_compared)`` for the diff verdict between two files."""
    cur_kind = classify_file(current)
    if cur_kind == "bench":
        _, cur_doc = load_any(current)
        cur_rows = _bench_rows(cur_doc, smoke=None)
        cur_series = {}
        for row in cur_rows:
            for metric in ("compress_mb_s", "decompress_mb_s"):
                if row.get(metric):
                    cur_series[f"{row['codec']}/{row['dataset']}/{metric}"] = \
                        float(row[metric])
        smoke = bool(cur_doc.get("config", {}).get("smoke"))
    else:
        cur_series = throughput_series(current)
        smoke = None
    base_kind = classify_file(baseline)
    if base_kind == "bench":
        _, base_doc = load_any(baseline)
        base_series = {}
        for row in _bench_rows(base_doc, smoke=smoke):
            for metric in ("compress_mb_s", "decompress_mb_s"):
                if row.get(metric):
                    base_series[f"{row['codec']}/{row['dataset']}/{metric}"] = \
                        float(row[metric])
    else:
        base_series = throughput_series(baseline)
    ratios = [(label, cur_series[label] / base_series[label])
              for label in sorted(cur_series)
              if label in base_series and base_series[label] > 0]
    return normalized_regressions(ratios, tolerance), len(ratios)


# ---------------------------------------------------------------------- #
# Rendering.

def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"


def _print_stage_table(rows: list[dict]) -> None:
    print(f"{'path':44s} {'calls':>6s} {'total s':>8s} {'p50 ms':>8s} "
          f"{'p95 ms':>8s} {'p99 ms':>8s} {'MB/s':>8s}")
    for row in rows:
        mbs = f"{row['mb_s']:.1f}" if row["mb_s"] else "-"
        flag = " !" if row["errors"] else ""
        print(f"{row['path'][:44]:44s} {row['calls']:6d} {row['total_s']:8.3f} "
              f"{row['p50_ms']:8.2f} {row['p95_ms']:8.2f} {row['p99_ms']:8.2f} "
              f"{mbs:>8s}{flag}")


def _report_one(path) -> None:
    kind, payload = load_any(path)
    print(f"== {path} ({kind}) ==")
    if kind == "trace":
        _print_stage_table(stage_table(payload))
    elif kind == "metrics":
        for rec in payload:
            if rec["type"] == "counter":
                print(f"  counter   {rec['name']:44s} {rec['value']}")
            elif rec["type"] == "gauge":
                print(f"  gauge     {rec['name']:44s} {rec['value']}")
            else:
                mean = rec["sum"] / rec["count"] if rec["count"] else 0.0
                print(f"  histogram {rec['name']:44s} n={rec['count']} "
                      f"mean={mean:.4g} min={rec.get('min')} max={rec.get('max')}")
    elif kind == "ledger":
        _report_ledger(payload)
    elif kind == "bench":
        for row in _bench_rows(payload, smoke=None):
            print(f"  {row['codec']:10s} {row['dataset']:14s} "
                  f"ratio {row.get('ratio', 0):6.2f}  "
                  f"compress {row.get('compress_mb_s', 0):8.2f} MB/s  "
                  f"decompress {row.get('decompress_mb_s', 0):8.2f} MB/s")


def _report_ledger(records: list[dict]) -> None:
    status: dict[str, str] = {}
    attempts: dict[str, int] = {}
    events: dict[str, int] = {}
    for rec in records:
        if rec.get("rec") == "cell":
            status[rec["cell"]] = rec["status"]
            if "attempt" in rec:
                attempts[rec["cell"]] = max(
                    attempts.get(rec["cell"], 0), int(rec["attempt"]))
        elif rec.get("rec") == "event":
            events[rec["kind"]] = events.get(rec["kind"], 0) + 1
    counts: dict[str, int] = {}
    for st in status.values():
        counts[st] = counts.get(st, 0) + 1
    total = len(status)
    print(f"  cells: {total} "
          f"({', '.join(f'{v} {k}' for k, v in sorted(counts.items()))})")
    retried = sum(1 for a in attempts.values() if a > 1)
    if retried:
        print(f"  retried cells: {retried} "
              f"(max attempt {max(attempts.values())})")
    if events:
        print("  events: " + ", ".join(f"{k} x{v}"
                                       for k, v in sorted(events.items())))


# ---------------------------------------------------------------------- #
# CLI.

def cmd_report(args) -> int:
    for path in args.files:
        try:
            _report_one(path)
        except ValueError as exc:
            print(f"SCHEMA VIOLATION: {exc}", file=sys.stderr)
            return 2
    return 0


def cmd_top(args) -> int:
    try:
        kind, spans = load_any(args.file)
    except ValueError as exc:
        print(f"SCHEMA VIOLATION: {exc}", file=sys.stderr)
        return 2
    if kind != "trace":
        print(f"top needs a trace JSONL file, got {kind}", file=sys.stderr)
        return 2
    ranked = sorted(spans, key=lambda r: -float(r["dur"]))[:args.n]
    print(f"{'dur ms':>10s} {'bytes':>10s}  path")
    for rec in ranked:
        print(f"{float(rec['dur']) * 1e3:10.2f} "
              f"{_fmt_bytes(int(rec.get('nbytes', 0))):>10s}  {rec['path']}")
    return 0


def cmd_critical_path(args) -> int:
    try:
        kind, spans = load_any(args.file)
    except ValueError as exc:
        print(f"SCHEMA VIOLATION: {exc}", file=sys.stderr)
        return 2
    if kind != "trace":
        print(f"critical-path needs a trace JSONL file, got {kind}",
              file=sys.stderr)
        return 2
    try:
        chain = critical_path(spans)
    except ValueError as exc:
        print(f"SCHEMA VIOLATION: {exc}", file=sys.stderr)
        return 2
    if not chain:
        print("no spans")
        return 0
    total = sum(float(rec["dur"]) for rec in chain)
    print(f"critical path: {len(chain)} span(s), {total * 1e3:.2f} ms")
    for depth, rec in enumerate(chain):
        share = float(rec["dur"]) / total * 100 if total > 0 else 0.0
        print(f"  {'  ' * depth}{rec['name']:30s} "
              f"{float(rec['dur']) * 1e3:10.2f} ms  {share:5.1f}%")
    return 0


def cmd_diff(args) -> int:
    try:
        failures, compared = diff_files(args.baseline, args.current,
                                        args.tolerance)
    except ValueError as exc:
        print(f"SCHEMA VIOLATION: {exc}", file=sys.stderr)
        return 2
    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    print(f"no regression: {compared} row(s) within "
          f"{args.tolerance:.0%} of the machine-normalized baseline")
    return 0


def add_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="obs_command", required=True)

    p = sub.add_parser("report", help="summarize telemetry files "
                                      "(trace/metrics JSONL, ledger, bench)")
    p.add_argument("files", nargs="+",
                   help="telemetry files or sweep dirs (kind is sniffed)")
    p.set_defaults(obs_func=cmd_report)

    p = sub.add_parser("top", help="slowest spans of a trace file")
    p.add_argument("file")
    p.add_argument("-n", type=int, default=10, help="rows to show (default 10)")
    p.set_defaults(obs_func=cmd_top)

    p = sub.add_parser("critical-path",
                       help="heaviest root-to-leaf span chain of a run")
    p.add_argument("file")
    p.set_defaults(obs_func=cmd_critical_path)

    p = sub.add_parser("diff", help="machine-normalized regression diff "
                                    "(same verdict as the bench CI gate)")
    p.add_argument("baseline")
    p.add_argument("current")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed normalized per-row slowdown (default 0.20)")
    p.set_defaults(obs_func=cmd_diff)


def run_from_args(args) -> int:
    return args.obs_func(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="offline telemetry analysis "
                    "(report / top / critical-path / diff)")
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
