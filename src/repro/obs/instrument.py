"""Codec instrumentation decorators.

``@traced_compress`` / ``@traced_decompress`` wrap a compressor method in
a trace span tagged with the codec name and record the standard codec
metrics (calls, bytes in/out, ``<codec>.compression_ratio``,
``<codec>.bits_per_value``). One decorator line per codec keeps CliZ and
every baseline emitting identical telemetry, so experiment harnesses can
compare codecs straight from a metrics snapshot. Near-free when no run is
active.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.obs.trace import get_run, inc_counter, observe, span

__all__ = ["traced_compress", "traced_decompress", "record_codec_metrics"]


def record_codec_metrics(codec: str, *, bytes_in: int, bytes_out: int,
                         n_values: int) -> None:
    """Record one compression's worth of standard codec metrics."""
    if get_run() is None:
        return
    inc_counter(f"{codec}.compress.calls")
    inc_counter(f"{codec}.compress.bytes_in", int(bytes_in))
    inc_counter(f"{codec}.compress.bytes_out", int(bytes_out))
    if n_values and bytes_out:
        observe(f"{codec}.compression_ratio", bytes_in / bytes_out)
        observe(f"{codec}.bits_per_value", bytes_out * 8.0 / n_values)


def traced_compress(fn):
    """Wrap ``compress(self, data, **kwargs)`` in a span + codec metrics."""

    @functools.wraps(fn)
    def wrapper(self, data, **kwargs):
        arr = np.asarray(data)
        with span("compress", nbytes=arr.nbytes, codec=self.codec_name):
            blob = fn(self, data, **kwargs)
        record_codec_metrics(self.codec_name, bytes_in=arr.nbytes,
                             bytes_out=len(blob), n_values=arr.size)
        return blob

    return wrapper


def traced_decompress(fn):
    """Wrap ``decompress(self, blob, **kwargs)`` in a span + counters."""

    @functools.wraps(fn)
    def wrapper(self, blob, **kwargs):
        with span("decompress", nbytes=len(blob), codec=self.codec_name):
            out = fn(self, blob, **kwargs)
        if get_run() is not None:
            inc_counter(f"{self.codec_name}.decompress.calls")
            inc_counter(f"{self.codec_name}.decompress.bytes_in", len(blob))
        return out

    return wrapper
