"""Telemetry sinks: JSONL files, an in-memory sink for tests, Chrome trace.

Two JSONL line schemas, shared by live pipeline telemetry and the
benchmark trajectories:

* **trace lines** — one span per line, ``type: "span"`` with ``run``,
  ``id``, ``parent``, ``name``, ``path``, ``ts`` (epoch seconds), ``dur``
  (seconds), ``pid``, ``tid``, ``nbytes``, ``tags``, ``status``;
* **metrics lines** — one metric per line, ``type`` is ``counter`` /
  ``gauge`` / ``histogram`` with ``name`` + ``value`` (counter, gauge) or
  ``buckets``/``counts``/``count``/``sum``/``min``/``max`` (histogram).

Both line kinds carry a ``schema`` version field (currently ``1``, see
:data:`repro.obs.metrics.SCHEMA_VERSION`). ``validate_trace_line`` /
``validate_metrics_line`` raise ``ValueError`` with the failing key, so
tests and CI can assert schema validity without a JSON-schema dependency;
they accept lines *without* the field (files written before versioning)
and reject versions newer than this reader understands. The Chrome-trace
export is the ``traceEvents`` JSON-array format understood by
``chrome://tracing`` and Perfetto.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import Run

__all__ = [
    "JsonlSink",
    "MemorySink",
    "write_trace_jsonl",
    "write_metrics_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "load_jsonl",
    "validate_trace_line",
    "validate_metrics_line",
]


# Per-path locks serializing concurrent JsonlSink appends within this
# process: healing the tail while another thread is mid-append would
# truncate that thread's half-written batch, and interleaved buffered
# writes could split a record across another batch's lines.
_sink_locks: dict[str, threading.Lock] = {}
_sink_locks_guard = threading.Lock()


def _lock_for(path: Path) -> threading.Lock:
    key = str(path)
    with _sink_locks_guard:
        return _sink_locks.setdefault(key, threading.Lock())


class JsonlSink:
    """Append JSON records, one per line, to a file.

    Crash-consistent appends: a previous process dying mid-append leaves
    an unterminated final line, which would fuse with the next record
    into one unparseable line. The sink heals that torn tail (truncating
    the partial record) before appending, so every *complete* line in the
    file is always valid JSON.

    Contention-safe appends: concurrent ``write`` calls from multiple
    threads (service handlers, the metrics exporter, a sweep) serialize
    on a per-path lock, and each batch is flushed as one ``O_APPEND``
    write, so batches never interleave line-by-line and healing never
    truncates another thread's in-flight append.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def write(self, records: Iterable[dict]) -> int:
        from repro.runtime import heal_jsonl_tail

        payload = b""
        n = 0
        for rec in records:
            payload += (json.dumps(rec, sort_keys=True) + "\n").encode("utf-8")
            n += 1
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _lock_for(self.path):
            healed = heal_jsonl_tail(self.path)
            if healed:
                warnings.warn(f"{self.path}: healed {healed} torn tail byte(s) "
                              "before appending", RuntimeWarning, stacklevel=2)
            if payload:
                fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                             0o644)
                try:
                    os.write(fd, payload)
                finally:
                    os.close(fd)
        return n


class MemorySink:
    """Collect records in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, records: Iterable[dict]) -> int:
        records = list(records)
        self.records.extend(records)
        return len(records)


# ---------------------------------------------------------------------- #
def write_trace_jsonl(run: "Run", path) -> int:
    """One span per line; returns the number of lines written."""
    return JsonlSink(path).write(run.span_records())


def write_metrics_jsonl(run: "Run", path) -> int:
    """One metric per line; returns the number of lines written."""
    return JsonlSink(path).write(run.metrics.records())


def chrome_trace_events(run: "Run") -> list[dict]:
    """The run's spans as Chrome-trace complete events (``ph: "X"``)."""
    events = [{
        "name": "run", "ph": "M", "cat": "__metadata",
        "pid": 0, "tid": 0, "args": {"run_id": run.run_id, **run.tags},
    }]
    for sp in run.spans():
        events.append({
            "name": sp.name,
            "cat": sp.path.split("/", 1)[0],
            "ph": "X",
            "ts": (sp.t_wall - run.t0_wall) * 1e6,  # microseconds
            "dur": sp.dur * 1e6,
            "pid": sp.pid,
            "tid": sp.tid,
            "args": {"path": sp.path, "nbytes": sp.nbytes,
                     "status": sp.status, **sp.tags},
        })
    return events


def write_chrome_trace(run: "Run", path) -> None:
    from repro.runtime import atomic_write

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write(path, json.dumps({"traceEvents": chrome_trace_events(run)}))


# ---------------------------------------------------------------------- #
def load_jsonl(path) -> list[dict]:
    """Parse a JSONL file into a list of dicts (blank lines ignored).

    Torn-tail tolerant: a final line left unterminated by a crashed
    writer is *skipped* with a counted ``RuntimeWarning`` (metric
    ``jsonl.torn_tail_skipped`` when a run is active) instead of raising
    — a local torn write is an expected crash signature, not corruption.
    Invalid JSON anywhere else still raises ``ValueError``.
    """
    raw = Path(path).read_text()
    torn_tail = bool(raw) and not raw.endswith("\n")
    lines = raw.splitlines()
    out = []
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            if not isinstance(rec, dict):
                raise ValueError(f"expected an object, got {type(rec).__name__}")
        except (json.JSONDecodeError, ValueError) as exc:
            if torn_tail and i == len(lines):
                from repro.obs.trace import inc_counter

                inc_counter("jsonl.torn_tail_skipped")
                warnings.warn(f"{path}: skipping torn final line ({exc})",
                              RuntimeWarning, stacklevel=2)
                continue
            raise ValueError(f"{path}:{i}: invalid JSON: {exc}") from None
        out.append(rec)
    return out


def _require(rec: dict, key: str, types, ctx: str) -> None:
    if key not in rec:
        raise ValueError(f"{ctx}: missing key {key!r}")
    if not isinstance(rec[key], types):
        raise ValueError(f"{ctx}: key {key!r} has type {type(rec[key]).__name__}")


def _check_schema(rec: dict, ctx: str) -> None:
    """Accept-and-check the optional ``schema`` version field.

    Absence is tolerated (files written before PR 7 carry no version);
    when present it must be an int in ``1..SCHEMA_VERSION`` — a newer
    version than this reader understands is an error, not a warning.
    """
    from repro.obs.metrics import SCHEMA_VERSION

    version = rec.get("schema")
    if version is None:
        return
    if not isinstance(version, int) or isinstance(version, bool):
        raise ValueError(f"{ctx}: 'schema' must be an int, "
                         f"got {type(version).__name__}")
    if not 1 <= version <= SCHEMA_VERSION:
        raise ValueError(f"{ctx}: schema version {version} not supported "
                         f"(this reader understands 1..{SCHEMA_VERSION})")


def validate_trace_line(rec: dict) -> None:
    """Raise ``ValueError`` unless ``rec`` is a schema-valid span line."""
    ctx = f"span line {rec.get('id')!r}"
    _check_schema(rec, ctx)
    _require(rec, "type", str, ctx)
    if rec["type"] != "span":
        raise ValueError(f"{ctx}: type is {rec['type']!r}, expected 'span'")
    for key, types in (("run", str), ("id", str), ("name", str), ("path", str),
                       ("ts", (int, float)), ("dur", (int, float)),
                       ("pid", int), ("tid", int), ("nbytes", int),
                       ("tags", dict), ("status", str)):
        _require(rec, key, types, ctx)
    if rec.get("parent") is not None and not isinstance(rec["parent"], str):
        raise ValueError(f"{ctx}: 'parent' must be a span id or null")
    if rec["dur"] < 0:
        raise ValueError(f"{ctx}: negative duration")
    if rec["status"] not in ("ok", "error"):
        raise ValueError(f"{ctx}: unknown status {rec['status']!r}")
    if not (rec["path"] == rec["name"] or rec["path"].endswith("/" + rec["name"])):
        raise ValueError(f"{ctx}: path {rec['path']!r} does not end in the span name")


def validate_metrics_line(rec: dict) -> None:
    """Raise ``ValueError`` unless ``rec`` is a schema-valid metric line."""
    ctx = f"metric line {rec.get('name')!r}"
    _check_schema(rec, ctx)
    _require(rec, "type", str, ctx)
    _require(rec, "name", str, ctx)
    kind = rec["type"]
    if kind == "counter":
        _require(rec, "value", int, ctx)
        if rec["value"] < 0:
            raise ValueError(f"{ctx}: negative counter")
    elif kind == "gauge":
        if rec.get("value") is not None and not isinstance(rec["value"], (int, float)):
            raise ValueError(f"{ctx}: gauge value must be numeric or null")
    elif kind == "histogram":
        for key, types in (("buckets", list), ("counts", list), ("count", int),
                           ("sum", (int, float))):
            _require(rec, key, types, ctx)
        if len(rec["counts"]) != len(rec["buckets"]) + 1:
            raise ValueError(f"{ctx}: counts must have len(buckets)+1 entries")
        if sorted(rec["buckets"]) != rec["buckets"]:
            raise ValueError(f"{ctx}: bucket edges must be ascending")
        if sum(rec["counts"]) != rec["count"]:
            raise ValueError(f"{ctx}: counts do not sum to count")
    else:
        raise ValueError(f"{ctx}: unknown metric type {kind!r}")
