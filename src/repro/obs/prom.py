"""Prometheus text exposition (format 0.0.4) for the obs registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.live.LiveRegistry` into the plain-text scrape format
Prometheus and its ecosystem understand — no client library, no
dependencies, just the documented line protocol:

* counters  -> ``<name>_total`` with ``# TYPE ... counter``;
* gauges    -> ``<name>`` with ``# TYPE ... gauge`` (unset gauges are
  omitted — Prometheus has no null);
* histograms -> cumulative ``<name>_bucket{le="..."}`` series ending in
  ``le="+Inf"``, plus ``<name>_sum`` and ``<name>_count``;
* live summaries -> ``<name>{quantile="0.5"}`` series plus ``_sum`` /
  ``_count`` with ``# TYPE ... summary``;
* live meters  -> ``<name>_rate`` gauge (units/second, EWMA) plus a
  ``<name>_total`` counter of everything marked — unless an exact
  counter of the same name is rendered from the metrics registry, in
  which case the meter's redundant ``_total`` is suppressed (several
  series, e.g. ``parallel.retries``, are both counted exactly and
  metered; emitting both would duplicate the family and make the
  document unscrapeable);
* live windows -> ``<name>_window_count`` / ``_window_mean`` /
  ``_window_last`` gauges over the sliding window.

Metric names are sanitized to the legal charset
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): every illegal character becomes ``_``
and a leading digit gets a ``_`` prefix. Every family carries ``# HELP``
and ``# TYPE`` lines; the HELP text names the originating obs series so
a dashboard reader can map back to ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.live import LiveRegistry
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Run

__all__ = [
    "CONTENT_TYPE",
    "sanitize_metric_name",
    "format_value",
    "render_registry",
    "render_run",
]

#: The Content-Type a conforming ``/metrics`` response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map an obs series name onto the legal Prometheus charset."""
    name = _INVALID_CHARS.sub("_", prefix + name)
    if not name:
        raise ValueError("metric name sanitized to empty string")
    if name[0].isdigit():
        name = "_" + name
    return name


def format_value(value) -> str:
    """One sample value in exposition syntax (inf/nan per the spec)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _family(lines: list[str], name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {_escape_help(help_text)}")
    lines.append(f"# TYPE {name} {kind}")


def _render_metric(lines: list[str], rec: dict, prefix: str) -> None:
    kind = rec["type"]
    raw = rec["name"]
    name = sanitize_metric_name(raw, prefix)
    if kind == "counter":
        _family(lines, f"{name}_total", "counter", f"repro counter {raw}")
        lines.append(f"{name}_total {format_value(rec['value'])}")
    elif kind == "gauge":
        if rec["value"] is None:
            return
        _family(lines, name, "gauge", f"repro gauge {raw}")
        lines.append(f"{name} {format_value(rec['value'])}")
    elif kind == "histogram":
        _family(lines, name, "histogram", f"repro histogram {raw}")
        cumulative = 0
        for edge, count in zip(rec["buckets"], rec["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{format_value(edge)}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {rec["count"]}')
        lines.append(f"{name}_sum {format_value(rec['sum'])}")
        lines.append(f"{name}_count {rec['count']}")


def _render_live(lines: list[str], rec: dict, prefix: str,
                 counter_families: frozenset[str] = frozenset()) -> None:
    kind = rec["type"]
    raw = rec["name"]
    name = sanitize_metric_name(raw, prefix)
    if kind == "summary":
        _family(lines, name, "summary", f"repro live latency summary {raw}")
        for label, value in rec["quantiles"].items():
            if value is None:
                continue
            q = float(label.lstrip("p")) / 100.0
            lines.append(f'{name}{{quantile="{q:g}"}} {format_value(value)}')
        lines.append(f"{name}_sum {format_value(rec['sum'])}")
        lines.append(f"{name}_count {rec['count']}")
    elif kind == "meter":
        _family(lines, f"{name}_rate", "gauge",
                f"repro live EWMA rate {raw} (units/s, tau={rec['tau']:g}s)")
        lines.append(f"{name}_rate {format_value(rec['rate'])}")
        # an exact counter of the same name owns the _total family; the
        # meter's copy would be a duplicate sample Prometheus rejects
        if f"{name}_total" not in counter_families:
            _family(lines, f"{name}_total", "counter",
                    f"repro live meter total {raw}")
            lines.append(f"{name}_total {format_value(rec['total'])}")
    elif kind == "window":
        _family(lines, f"{name}_window_count", "gauge",
                f"repro live window sample count {raw} ({rec['window']:g}s)")
        lines.append(f"{name}_window_count {rec['count']}")
        for field in ("mean", "last"):
            if rec[field] is None:
                continue
            _family(lines, f"{name}_window_{field}", "gauge",
                    f"repro live window {field} {raw}")
            lines.append(f"{name}_window_{field} {format_value(rec[field])}")


def render_registry(metrics: "MetricsRegistry | None" = None,
                    live: "LiveRegistry | None" = None,
                    prefix: str = "repro_") -> str:
    """Render registries into one exposition document (trailing newline)."""
    lines: list[str] = []
    counter_families: set[str] = set()
    if metrics is not None:
        for rec in metrics.records():
            _render_metric(lines, rec, prefix)
            if rec["type"] == "counter":
                counter_families.add(
                    sanitize_metric_name(rec["name"], prefix) + "_total")
    if live is not None:
        families = frozenset(counter_families)
        for rec in live.snapshot().values():
            _render_live(lines, rec, prefix, families)
    return "\n".join(lines) + "\n" if lines else "\n"


def render_run(run: "Run | None", prefix: str = "repro_") -> str:
    """Render a run's exact metrics + live aggregates (empty doc if None)."""
    if run is None:
        return "\n"
    return render_registry(run.metrics, run.live, prefix)
