"""Run-scoped trace spans (thread- and process-safe).

A :class:`Run` owns everything observed during one unit of work — a CLI
invocation, an experiment, a benchmark — under one ``run_id``: the finished
trace spans, and a :class:`~repro.obs.metrics.MetricsRegistry`. The *span
stack* lives in a :class:`contextvars.ContextVar`, so two threads (or two
asyncio tasks) nesting spans concurrently each see their own ancestry and
cannot corrupt each other — the failure mode of the old module-global
profiler stack. Finished spans are appended to the run under a lock.

Collection is process-global and opt-in: with no active run,
:func:`span` is a single module-global check and costs effectively
nothing, which is what lets the instrumentation live permanently in the
compression hot paths.

Typical use::

    from repro import obs

    with obs.run(tags={"dataset": "SSH"}) as r:
        with obs.span("compress", codec="cliz", nbytes=arr.nbytes):
            ...
        obs.inc_counter("files.compressed")
    r.export_jsonl("trace.jsonl")
    r.export_chrome_trace("trace.json")   # open in chrome://tracing / Perfetto

Workers on a process pool collect into their own local run and ship
``span_records()`` + ``metrics.snapshot()`` back with their result; the
parent stitches them under the dispatching span with :meth:`Run.absorb`
(see ``repro.parallel``).
"""

from __future__ import annotations

import itertools
import os
import secrets
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.live import LiveRegistry
from repro.obs.metrics import SCHEMA_VERSION, MetricsRegistry, latency_buckets

__all__ = [
    "Span",
    "Run",
    "start_run",
    "end_run",
    "get_run",
    "last_run",
    "run",
    "span",
    "current_span",
    "add_bytes",
    "set_tag",
    "inc_counter",
    "set_gauge",
    "observe",
    "mark_rate",
    "observe_latency",
    "observe_window",
]

_id_counter = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_id_counter):x}"


@dataclass
class Span:
    """One finished (or in-flight) trace span.

    ``t_wall`` is wall-clock epoch seconds at span start — comparable
    across processes on one machine, which is what makes cross-process
    merging meaningful. ``dur`` comes from ``perf_counter`` deltas.
    """

    name: str
    span_id: str = field(default_factory=_new_span_id)
    parent_id: str | None = None
    run_id: str = ""
    path: str = ""
    t_wall: float = 0.0
    dur: float = 0.0
    pid: int = field(default_factory=os.getpid)
    tid: int = field(default_factory=threading.get_native_id)
    nbytes: int = 0
    tags: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    def to_record(self) -> dict:
        """JSON-serializable dict (one JSONL trace line)."""
        return {
            "schema": SCHEMA_VERSION,
            "type": "span",
            "run": self.run_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "path": self.path,
            "ts": self.t_wall,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "nbytes": self.nbytes,
            "tags": self.tags,
            "status": self.status,
        }

    @classmethod
    def from_record(cls, rec: dict) -> "Span":
        return cls(
            name=rec["name"],
            span_id=rec["id"],
            parent_id=rec.get("parent"),
            run_id=rec.get("run", ""),
            path=rec.get("path", rec["name"]),
            t_wall=float(rec.get("ts", 0.0)),
            dur=float(rec.get("dur", 0.0)),
            pid=int(rec.get("pid", 0)),
            tid=int(rec.get("tid", 0)),
            nbytes=int(rec.get("nbytes", 0)),
            tags=dict(rec.get("tags") or {}),
            status=rec.get("status", "ok"),
        )


class Run:
    """Collector for one run: finished spans + a metrics registry."""

    def __init__(self, run_id: str | None = None,
                 tags: dict[str, Any] | None = None) -> None:
        self.run_id = run_id or secrets.token_hex(6)
        self.tags = dict(tags or {})
        self.t0_wall = time.time()
        self.metrics = MetricsRegistry()
        self.live = LiveRegistry()
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _append(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def span_records(self) -> list[dict]:
        """All finished spans as JSONL-ready dicts."""
        return [sp.to_record() for sp in self.spans()]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
        self.metrics.clear()

    # ------------------------------------------------------------------ #
    def record_span(self, name: str, *, t_start: float, dur: float,
                    parent: Span | None = None, tid: int | None = None,
                    nbytes: int = 0, **tags: Any) -> Span:
        """Append a manually timed span (e.g. a *simulated*-time event).

        The discrete-event transfer simulator uses this to emit spans on
        the simulated clock — ``t_start`` seconds after the run start —
        so compute/transfer overlap is visible on one Chrome-trace
        timeline next to the real spans.
        """
        sp = Span(name, run_id=self.run_id, t_wall=self.t0_wall + t_start,
                  dur=dur, nbytes=nbytes, tags=tags)
        if parent is not None:
            sp.parent_id = parent.span_id
            sp.path = f"{parent.path}/{name}"
        else:
            sp.path = name
        if tid is not None:
            sp.tid = tid
        self._append(sp)
        return sp

    def absorb(self, records: list[dict], metrics_snapshot: dict | None = None,
               *, reparent_to: Span | None = None) -> None:
        """Stitch spans (and metrics) shipped back from a worker process.

        Worker root spans become children of ``reparent_to`` (the parent's
        dispatching span) and every path is re-rooted under it, so
        aggregations (``get_profile``) and the Chrome trace show worker
        work nested where it was dispatched. Worker pids are preserved —
        the trace viewer lays each worker out on its own track.
        """
        prefix = f"{reparent_to.path}/" if reparent_to is not None else ""
        absorbed = []
        for rec in records:
            sp = Span.from_record(rec)
            if reparent_to is not None:
                if sp.parent_id is None:
                    sp.parent_id = reparent_to.span_id
                sp.tags.setdefault("worker_run", sp.run_id)
                sp.path = prefix + sp.path
            sp.run_id = self.run_id
            absorbed.append(sp)
        with self._lock:
            self._spans.extend(absorbed)
        if metrics_snapshot:
            self.metrics.merge(metrics_snapshot)

    # ------------------------------------------------------------------ #
    def export_jsonl(self, path) -> None:
        from repro.obs.sinks import write_trace_jsonl

        write_trace_jsonl(self, path)

    def export_chrome_trace(self, path) -> None:
        from repro.obs.sinks import write_chrome_trace

        write_chrome_trace(self, path)

    def export_metrics_jsonl(self, path) -> None:
        from repro.obs.sinks import write_metrics_jsonl

        write_metrics_jsonl(self, path)


# ---------------------------------------------------------------------- #
# Process-global active run + contextvar span stack.

_active_run: Run | None = None
_last_run: Run | None = None
_current_span: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


def start_run(run_id: str | None = None, tags: dict[str, Any] | None = None) -> Run:
    """Create a new :class:`Run` and make it the process's active collector."""
    global _active_run, _last_run
    _active_run = _last_run = Run(run_id, tags)
    return _active_run


def end_run() -> Run | None:
    """Deactivate collection; the finished run stays readable via :func:`last_run`."""
    global _active_run, _last_run
    finished = _active_run
    if finished is not None:
        _last_run = finished
    _active_run = None
    return finished


def get_run() -> Run | None:
    """The active run, or None when collection is off."""
    return _active_run


def last_run() -> Run | None:
    """The most recently active run (still readable after :func:`end_run`)."""
    return _active_run or _last_run


@contextmanager
def run(run_id: str | None = None, tags: dict[str, Any] | None = None) -> Iterator[Run]:
    """``with obs.run() as r:`` — scoped active run, deactivated on exit."""
    r = start_run(run_id, tags)
    try:
        yield r
    finally:
        if _active_run is r:
            end_run()


@contextmanager
def span(name: str, nbytes: int | None = None, **tags: Any) -> Iterator[Span | None]:
    """Time a named span; nesting builds "/"-joined paths.

    A near-free no-op when no run is active. Yields the live
    :class:`Span` (None when disabled) so callers can attach tags or a
    byte count after the fact.
    """
    r = _active_run
    if r is None:
        yield None
        return
    parent = _current_span.get()
    sp = Span(name, run_id=r.run_id, tags=dict(tags) if tags else {})
    if parent is not None:
        sp.parent_id = parent.span_id
        sp.path = f"{parent.path}/{name}"
    else:
        sp.path = name
    if nbytes is not None:
        sp.nbytes = int(nbytes)
    token = _current_span.set(sp)
    sp.t_wall = time.time()
    t0 = time.perf_counter()
    try:
        yield sp
    except BaseException:
        sp.status = "error"
        raise
    finally:
        sp.dur = time.perf_counter() - t0
        _current_span.reset(token)
        # The run may have been swapped mid-span (enable_profiling() inside
        # an open span); record into the run that opened the span.
        r._append(sp)
        # Live span-latency quantiles (p50/p95/p99 on /metrics without
        # storing spans). Keyed by span *name*, not path: names are the
        # low-cardinality stage vocabulary, paths are per-call-site.
        r.live.summary(f"span.{name}").observe(sp.dur)


def current_span() -> Span | None:
    return _current_span.get()


def add_bytes(nbytes: int) -> None:
    """Credit ``nbytes`` to the innermost open span (no-op when disabled)."""
    sp = _current_span.get()
    if sp is not None:
        sp.nbytes += int(nbytes)


def set_tag(key: str, value: Any) -> None:
    """Attach a tag to the innermost open span (no-op when disabled)."""
    sp = _current_span.get()
    if sp is not None:
        sp.tags[key] = value


# ---------------------------------------------------------------------- #
# Metric conveniences routed at the active run (no-ops when collection is
# off) — these keep pipeline call sites to one cheap line.

def inc_counter(name: str, value: int = 1) -> None:
    r = _active_run
    if r is not None:
        r.metrics.counter(name).inc(value)


def set_gauge(name: str, value: float) -> None:
    r = _active_run
    if r is not None:
        r.metrics.gauge(name).set(value)


def observe(name: str, value: float, buckets: list[float] | None = None) -> None:
    r = _active_run
    if r is not None:
        r.metrics.histogram(name, buckets).observe(value)


def mark_rate(name: str, n: float = 1.0) -> None:
    """Mark ``n`` events/bytes on the run's live EWMA meter ``name``."""
    r = _active_run
    if r is not None:
        r.live.meter(name).mark(n)


def observe_latency(name: str, seconds: float) -> None:
    """Record one duration into both live and exact views.

    Feeds the ``<name>.seconds`` histogram (``latency_buckets()`` edges,
    so offline quantiles are meaningful) *and* the live
    :class:`~repro.obs.live.LatencySummary` ``name`` (p50/p95/p99 on
    ``/metrics`` while the run is still in flight).
    """
    r = _active_run
    if r is not None:
        r.metrics.histogram(f"{name}.seconds", latency_buckets()).observe(seconds)
        r.live.summary(name).observe(seconds)


def observe_window(name: str, value: float) -> None:
    """Add one sample to the run's sliding-window series ``name``."""
    r = _active_run
    if r is not None:
        r.live.window(name).add(value)
