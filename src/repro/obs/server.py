"""Asyncio ``/metrics`` exporter: live telemetry over plain HTTP.

A tiny stdlib-only HTTP server (``asyncio.start_server``; no framework)
that exposes the process's active observability run while it works:

* ``GET /metrics``  — Prometheus text exposition 0.0.4 rendered from the
  run's metrics registry *and* live aggregates (EWMA rates, span-latency
  p50/p95/p99, queue-depth windows). Scrape it with Prometheus, or just
  ``curl`` it — the format is human-readable.
* ``GET /health``   — liveness JSON: status, pid, run id, span count.
* ``GET /snapshot`` — the full registry + live snapshot as JSON (the
  machine-readable sibling of ``/metrics``).

The server runs its event loop on a daemon thread so synchronous
workloads (the sweep driver, experiment harnesses) stay untouched; all
shared state it reads is lock-protected (see :mod:`repro.obs.metrics` /
:mod:`repro.obs.live`). Long-running CLI subcommands start one with
``--serve-metrics PORT``; ``python -m repro.obs.server`` runs a
standalone exporter (mostly useful for poking at the endpoints).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from repro.obs import trace
from repro.obs.prom import CONTENT_TYPE, render_run

__all__ = ["MetricsServer", "serve_from_args", "main"]

_MAX_HEADER_LINES = 100


class MetricsServer:
    """Background ``/metrics`` + ``/health`` + ``/snapshot`` HTTP server.

    ``port=0`` binds an ephemeral port; read the real one from ``.port``
    after :meth:`start`. ``run_provider`` defaults to
    :func:`repro.obs.last_run`, so the server always serves the run the
    process is currently collecting into (or the one just finished).
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1", *,
                 run_provider=None, prefix: str = "repro_") -> None:
        self.host = host
        self.requested_port = int(port)
        self.port: int | None = None
        self.prefix = prefix
        self.run_provider = run_provider or trace.last_run
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------ #
    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns self when ready.

        Raises ``RuntimeError`` on a double start of the same instance,
        and ``RuntimeError`` (chained from the ``OSError``) when the port
        is already bound — e.g. by another exporter. A stopped server may
        be started again (state is reset here).
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started.clear()
        self._error = None
        self._loop = None
        self._stop = None
        self.port = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()),
            name="repro-metrics-server", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("metrics server failed to start within 10s")
        if self._error is not None:
            self._thread.join()
            self._thread = None
            raise RuntimeError(
                f"metrics server failed to bind {self.host}:"
                f"{self.requested_port}") from self._error
        return self

    def close(self) -> None:
        """Begin shutdown: stop accepting, let in-flight responses finish.

        Does not block; pair with :meth:`join` (or call :meth:`stop`,
        which does both). Safe to call more than once.
        """
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass

    def join(self, timeout: float = 10.0) -> None:
        """Wait for the server thread to exit; frees the port on return.

        Raises ``RuntimeError`` if the thread is still alive after
        ``timeout`` — a leaked port must fail loudly in tests, not flake
        the next case that binds the same port.
        """
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout=timeout)
        if thread.is_alive():
            raise RuntimeError("metrics server thread did not exit "
                               f"within {timeout}s")
        self._thread = None

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._thread is None:
            return
        self.close()
        self.join()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        try:
            server = await asyncio.start_server(
                self._handle, self.host, self.requested_port)
        except OSError as exc:
            self._error = exc
            self._started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop.wait()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=10.0)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                raise ValueError("malformed request line")
            method, target = parts[0], parts[1]
            for _ in range(_MAX_HEADER_LINES):  # drain headers
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            status, ctype, body = self._route(method, target.split("?", 1)[0])
        # a broken scrape must never take the exporter down with it — any
        # handler error degrades to a 500 response (or a dropped conn).
        except Exception as exc:  # noqa: BLE001
            status, ctype = 500, "text/plain; charset=utf-8"
            body = f"internal error: {type(exc).__name__}: {exc}\n"
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "Error")
        payload = body.encode("utf-8")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # client went away mid-response
            pass

    # ------------------------------------------------------------------ #
    def _route(self, method: str, path: str) -> tuple[int, str, str]:
        if method != "GET":
            return 405, "text/plain; charset=utf-8", "only GET is supported\n"
        run = self.run_provider()
        if run is not None:
            run.metrics.counter("obs.server.requests").inc()
        if path == "/metrics":
            return 200, CONTENT_TYPE, render_run(run, self.prefix)
        if path == "/health":
            body = json.dumps({
                "status": "ok",
                "pid": os.getpid(),
                "uptime_seconds": round(time.monotonic() - self._t0, 3),
                "run": None if run is None else run.run_id,
                "collecting": trace.get_run() is not None,
            }, sort_keys=True) + "\n"
            return 200, "application/json; charset=utf-8", body
        if path == "/snapshot":
            if run is None:
                body = json.dumps({"run": None}) + "\n"
            else:
                body = json.dumps({
                    "run": run.run_id,
                    "tags": run.tags,
                    "n_spans": len(run.spans()),
                    "metrics": run.metrics.snapshot(),
                    "live": run.live.snapshot(),
                }, sort_keys=True) + "\n"
            return 200, "application/json; charset=utf-8", body
        return 404, "text/plain; charset=utf-8", \
            f"unknown path {path!r}; try /metrics, /health, /snapshot\n"


# ---------------------------------------------------------------------- #
def serve_from_args(args) -> MetricsServer | None:
    """Start a server when ``--serve-metrics PORT`` was given (else None).

    Shared by the CLI subcommands: ensures an obs run is active (the
    exporter is pointless without a collector), binds, and announces the
    scrape URL on stderr. The caller owns ``stop()``.
    """
    port = getattr(args, "serve_metrics", None)
    if port is None:
        return None
    import sys

    if trace.get_run() is None:
        trace.start_run(tags={"command": getattr(args, "command", "serve")})
    server = MetricsServer(port=port).start()
    print(f"serving live telemetry on {server.url}/metrics "
          f"(/health, /snapshot)", file=sys.stderr)
    return server


def main(argv: list[str] | None = None) -> int:
    """Standalone exporter: ``python -m repro.obs.server [--port N]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-obs-server",
        description="standalone Prometheus /metrics exporter for repro.obs")
    parser.add_argument("--port", type=int, default=9464,
                        help="port to bind (default 9464; 0 = ephemeral)")
    parser.add_argument("--host", default="127.0.0.1")
    args = parser.parse_args(argv)

    if trace.get_run() is None:
        trace.start_run(tags={"command": "obs.server"})
    server = MetricsServer(port=args.port, host=args.host).start()
    print(f"serving on {server.url}/metrics (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
