"""repro.obs — run-scoped observability: trace spans, metrics, sinks.

See ``docs/OBSERVABILITY.md`` for the span model, metric names, and sink
formats. The package is dependency-free and safe to import from any layer;
with no active run every hook is a near-free no-op.

Live telemetry rides on the same run: streaming aggregates in
:mod:`repro.obs.live` (EWMA rates, sliding windows, P² quantiles), the
Prometheus renderer in :mod:`repro.obs.prom`, the asyncio ``/metrics``
exporter in :mod:`repro.obs.server`, and the offline analysis CLI in
:mod:`repro.obs.report` (``python -m repro obs ...``).
"""

from repro.obs.instrument import (
    record_codec_metrics,
    traced_compress,
    traced_decompress,
)
from repro.obs.live import (
    EwmaMeter,
    LatencySummary,
    LiveRegistry,
    P2Quantile,
    RingWindow,
)
from repro.obs.metrics import (
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    latency_buckets,
)
from repro.obs.prom import render_registry, render_run
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    load_jsonl,
    validate_metrics_line,
    validate_trace_line,
    write_chrome_trace,
    write_metrics_jsonl,
    write_trace_jsonl,
)
from repro.obs.trace import (
    Run,
    Span,
    add_bytes,
    current_span,
    end_run,
    get_run,
    inc_counter,
    last_run,
    mark_rate,
    observe,
    observe_latency,
    observe_window,
    run,
    set_gauge,
    set_tag,
    span,
    start_run,
)

__all__ = [
    "Span",
    "Run",
    "start_run",
    "end_run",
    "get_run",
    "last_run",
    "run",
    "span",
    "current_span",
    "add_bytes",
    "set_tag",
    "inc_counter",
    "set_gauge",
    "observe",
    "mark_rate",
    "observe_latency",
    "observe_window",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "latency_buckets",
    "SCHEMA_VERSION",
    "EwmaMeter",
    "RingWindow",
    "P2Quantile",
    "LatencySummary",
    "LiveRegistry",
    "render_registry",
    "render_run",
    "JsonlSink",
    "MemorySink",
    "load_jsonl",
    "validate_trace_line",
    "validate_metrics_line",
    "write_trace_jsonl",
    "write_metrics_jsonl",
    "write_chrome_trace",
    "traced_compress",
    "traced_decompress",
    "record_codec_metrics",
]
