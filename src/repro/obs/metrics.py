"""Metrics registry: counters, gauges, histograms with a snapshot/merge API.

The registry is deliberately tiny and dependency-free — Prometheus
semantics (monotonic counters, last-write gauges, fixed-bucket cumulative
histograms) without the wire format. Pipelines record compression ratio,
quantizer hit-rate, bits/value, predictor selections, WAN queue depths and
link utilization; ``snapshot()`` renders everything as plain dicts that
serialize to the same JSONL schema the benchmarks emit, and ``merge()``
folds a worker's snapshot into the parent registry (counters and histogram
buckets add; gauges keep the merged-in value, i.e. last writer wins).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "latency_buckets",
    "DEFAULT_BUCKETS",
    "SCHEMA_VERSION",
]

#: Version stamped on every exported JSONL line (``"schema": 1``).
#: Readers accept lines without the field (pre-versioning files) and any
#: version <= the current one; see ``repro.obs.sinks``.
SCHEMA_VERSION = 1


def exponential_buckets(start: float, factor: float, count: int) -> list[float]:
    """``count`` ascending bucket edges: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return [start * factor ** i for i in range(count)]


#: Generic default edges spanning ratio-like and size-like observations.
DEFAULT_BUCKETS = exponential_buckets(0.001, 4.0, 16)  # 1e-3 .. ~1e6


def latency_buckets() -> list[float]:
    """Bucket edges tuned for second-scale durations: 100 µs .. ~105 s.

    ``DEFAULT_BUCKETS`` (factor 4, 1e-3..1e6) collapses every realistic
    span latency into three or four buckets, which makes ``/metrics``
    histogram quantiles meaningless. Duration histograms use these
    factor-2 edges instead: 21 buckets from 0.1 ms to ~105 s.
    """
    return exponential_buckets(1e-4, 2.0, 21)


class Counter:
    """Monotonic counter (thread-safe: ``inc`` holds a per-metric lock)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, value: int = 1) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        # += on an attribute is a read-modify-write of several bytecodes;
        # two threads interleaving it lose increments, hence the lock.
        with self._lock:
            self.value += value

    def to_record(self) -> dict:
        return {"schema": SCHEMA_VERSION, "type": "counter",
                "name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value (thread-safe)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def to_record(self) -> dict:
        return {"schema": SCHEMA_VERSION, "type": "gauge",
                "name": self.name, "value": self.value}


class Histogram:
    """Fixed-edge histogram with count/sum/min/max.

    ``buckets`` are ascending upper edges; observations land in the first
    bucket whose edge is >= the value (edge values inclusive, matching
    Prometheus ``le`` semantics), with one overflow bucket past the last
    edge — ``counts`` has ``len(buckets) + 1`` entries.
    """

    def __init__(self, name: str, buckets: list[float] | None = None) -> None:
        edges = list(buckets) if buckets else list(DEFAULT_BUCKETS)
        if sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ValueError("bucket edges must be strictly ascending")
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # One lock for the whole update: counts/count/sum/min/max must
        # stay mutually consistent for concurrent observers and mergers.
        with self._lock:
            # bisect_left finds the first edge >= value (edges inclusive, "le").
            self.counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def to_record(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "type": "histogram",
            "name": self.name,
            "buckets": self.buckets,
            "counts": self.counts,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use, snapshot as dicts."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, *args)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: list[float] | None = None) -> Histogram:
        return self._get(name, Histogram, buckets)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, dict]:
        """All metrics as ``{name: record}`` plain dicts (JSON-ready)."""
        with self._lock:
            return {name: m.to_record() for name, m in sorted(self._metrics.items())}

    def records(self) -> list[dict]:
        """Snapshot as a list of JSONL-ready lines."""
        return list(self.snapshot().values())

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a ``snapshot()`` (e.g. from a pool worker) into this registry.

        Counters and histogram buckets add; gauges take the merged value;
        a histogram merge requires identical bucket edges.
        """
        for name, rec in snapshot.items():
            kind = rec["type"]
            if kind == "counter":
                self.counter(name).inc(int(rec["value"]))
            elif kind == "gauge":
                if rec["value"] is not None:
                    self.gauge(name).set(rec["value"])
            elif kind == "histogram":
                hist = self.histogram(name, rec["buckets"])
                if hist.buckets != list(rec["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket edges differ; cannot merge"
                    )
                with hist._lock:  # folds must not interleave with observe()
                    for i, c in enumerate(rec["counts"]):
                        hist.counts[i] += int(c)
                    hist.count += int(rec["count"])
                    hist.sum += float(rec["sum"])
                    for attr, fold in (("min", min), ("max", max)):
                        other = rec.get(attr)
                        if other is not None:
                            ours = getattr(hist, attr)
                            setattr(hist, attr,
                                    other if ours is None else fold(ours, other))
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
