"""Command-line interface: ``python -m repro <command>``.

Commands
--------
compress      compress a ``.npy`` array to a ``.rz`` blob
decompress    reconstruct a ``.rz`` blob back to ``.npy``
info          show a blob's codec, header and section sizes
tune          run the CliZ auto-tuner and print the winning pipeline
assess        quality report: original vs reconstructed (Z-checker style)
dataset       generate one of the synthetic Table-III datasets
experiment    run one of the paper's experiment harnesses
sweep         kill-resumable experiment sweep (crash-consistent ledger)
obs           offline telemetry analysis (report / top / critical-path / diff)
codecs        list registered codecs

Examples
--------
::

    python -m repro dataset SSH --out ssh.npy --mask-out ssh_mask.npy
    python -m repro tune ssh.npy --rel-eb 1e-3 --mask ssh_mask.npy \\
        --time-axis 2 --horiz-axes 0,1
    python -m repro compress ssh.npy ssh.rz --codec cliz --rel-eb 1e-3 \\
        --mask ssh_mask.npy
    python -m repro decompress ssh.rz ssh_out.npy
    python -m repro assess ssh.npy ssh_out.npy --mask ssh_mask.npy
    python -m repro experiment headline
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _load_mask(path):
    if path is None:
        return None
    return np.load(path).astype(bool)


def _eb_kwargs(args) -> dict:
    if (args.rel_eb is None) == (args.abs_eb is None):
        raise SystemExit("specify exactly one of --rel-eb / --abs-eb")
    if args.rel_eb is not None:
        return {"rel_eb": args.rel_eb}
    return {"abs_eb": args.abs_eb}


# ------------------------------------------------------------------- #
def _obs_begin(args):
    """Start an observability run if --profile / any telemetry sink is set.

    ``--serve-metrics PORT`` additionally starts the live HTTP exporter
    (Prometheus ``/metrics`` + ``/health`` + ``/snapshot``) for the
    duration of the command; it is stopped in :func:`_obs_end`.
    """
    serve = getattr(args, "serve_metrics", None) is not None
    wanted = (serve or getattr(args, "profile", False)
              or getattr(args, "trace_out", None)
              or getattr(args, "metrics_out", None)
              or getattr(args, "chrome_out", None))
    if not wanted:
        return None
    from repro import obs

    run = obs.start_run(tags={"command": args.command})
    if serve:
        from repro.obs.server import serve_from_args

        args._metrics_server = serve_from_args(args)
    return run


def _obs_end(args, run) -> None:
    """Print the profile and export the requested telemetry files."""
    if run is None:
        return
    from repro import obs
    from repro.utils.profiling import format_profile

    server = getattr(args, "_metrics_server", None)
    if server is not None:
        server.stop()
    obs.end_run()
    if getattr(args, "profile", False):
        print("\nper-stage profile:", file=sys.stderr)
        print(format_profile(), file=sys.stderr)
    if getattr(args, "trace_out", None):
        n = obs.write_trace_jsonl(run, args.trace_out)
        print(f"trace    : {n} spans -> {args.trace_out}", file=sys.stderr)
    if getattr(args, "metrics_out", None):
        n = obs.write_metrics_jsonl(run, args.metrics_out)
        print(f"metrics  : {n} series -> {args.metrics_out}", file=sys.stderr)
    if getattr(args, "chrome_out", None):
        obs.write_chrome_trace(run, args.chrome_out)
        print(f"chrome   : trace -> {args.chrome_out} "
              "(open in chrome://tracing or ui.perfetto.dev)", file=sys.stderr)


def _faults_from(args):
    """Parse --inject-faults into a FaultInjector (None when unset)."""
    spec = getattr(args, "inject_faults", None)
    if spec is None:
        return None
    from repro.faults import parse_fault_spec

    return parse_fault_spec(spec)


def cmd_compress(args) -> int:
    from repro import compressor_for

    data = np.load(args.input)
    mask = _load_mask(args.mask)
    kwargs = _eb_kwargs(args)
    faults = _faults_from(args)
    run = _obs_begin(args)
    if args.chunks:
        from repro.parallel import compress_chunked

        blob = compress_chunked(
            data, args.codec, axis=args.chunk_axis, n_chunks=args.chunks,
            workers=args.workers, mask=mask, retries=args.retries,
            retry_backoff=args.retry_backoff, timeout=args.timeout,
            faults=faults, **kwargs)
    else:
        if faults is not None:
            raise SystemExit("--inject-faults on compress requires --chunks "
                             "(faults target the chunked pipeline)")
        comp = compressor_for(args.codec)
        if mask is not None:
            kwargs["mask"] = mask
        blob = comp.compress(data, **kwargs)
    _obs_end(args, run)
    from repro.runtime import atomic_write

    atomic_write(args.output, blob)
    ratio = data.size * 4 / len(blob)
    print(f"{args.input} -> {args.output}: {len(blob)} bytes "
          f"(CR {ratio:.2f}x vs 32-bit)")
    return 0


def cmd_decompress(args) -> int:
    from repro import decompress

    with open(args.input, "rb") as fh:
        blob = fh.read()
    faults = _faults_from(args)
    if faults is not None:
        # corrupt the blob in memory — exercises salvage without touching
        # the file on disk (used by the CI robustness smoke job)
        blob, events = faults.corrupt_blob(blob, "cli.decompress")
        for event in events:
            print(f"injected: {event}", file=sys.stderr)
    run = _obs_begin(args)
    if args.salvage:
        from repro.encoding.container import Container
        from repro.parallel import decompress_chunked

        codec = Container.peek_codec(blob)
        if codec != "chunked":
            raise SystemExit(
                f"--salvage needs a chunked blob (got codec {codec!r}); "
                "for RCDF datasets use repro.io.rcdf.read_rcdf(salvage=True)")
        data, report = decompress_chunked(
            blob, workers=args.workers, salvage=True, retries=args.retries,
            retry_backoff=args.retry_backoff)
        print(report.summary(), file=sys.stderr)
        if args.salvage_report:
            from repro.runtime import atomic_write

            atomic_write(args.salvage_report,
                         json.dumps(report.to_dict(), indent=2))
            print(f"salvage report -> {args.salvage_report}", file=sys.stderr)
    else:
        data = decompress(blob)
    _obs_end(args, run)
    np.save(args.output, data)
    print(f"{args.input} -> {args.output}: shape {data.shape}, dtype {data.dtype}")
    return 0


def cmd_info(args) -> int:
    from repro.encoding.container import Container

    with open(args.input, "rb") as fh:
        blob = fh.read()
    container = Container.from_bytes(blob)
    print(f"codec    : {container.codec}")
    print(f"header   : {json.dumps(container.header, indent=2, default=str)}")
    print("sections :")
    for name in container.section_names:
        print(f"  {name:24s} {len(container.section(name)):10d} bytes")
    return 0


def cmd_tune(args) -> int:
    from repro import AutoTuner

    data = np.load(args.input)
    mask = _load_mask(args.mask)
    horiz = tuple(int(x) for x in args.horiz_axes.split(",")) if args.horiz_axes else None
    tuner = AutoTuner(sampling_rate=args.sampling_rate, time_axis=args.time_axis,
                      horiz_axes=horiz, max_layouts=args.max_layouts)
    result = tuner.tune(data, mask=mask, **_eb_kwargs(args))
    print(f"period   : {result.period}")
    print(f"sample   : {result.sample_shape} ({result.sampling_rate:.3%} of the data)")
    print(f"tuning   : {result.total_time:.1f}s over {len(result.trials)} pipelines")
    print(f"best     : {result.best.describe()}")
    print("top 5    :")
    for trial in result.sorted_trials()[:5]:
        print(f"  est CR {trial.est_ratio:8.2f}  {trial.name}")
    if args.save_config:
        from repro.runtime import atomic_write

        atomic_write(args.save_config, json.dumps(result.best.to_dict(), indent=2))
        print(f"saved    : {args.save_config}")
    return 0


def cmd_assess(args) -> int:
    from repro.metrics import assess

    original = np.load(args.original)
    recon = np.load(args.reconstructed)
    mask = _load_mask(args.mask)
    report = assess(original, recon, mask)
    print(report.text())
    if args.abs_eb is not None:
        ok = report.passes(abs_eb=args.abs_eb)
        print(f"acceptance ({args.abs_eb:g} bound + Pearson>=0.99999): "
              f"{'PASS' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0


def cmd_dataset(args) -> int:
    from repro.datasets import load

    field = load(args.name)
    np.save(args.out, field.data)
    print(f"{args.name}: shape {field.shape}, axes {field.axes}, "
          f"valid {field.valid_fraction:.0%} -> {args.out}")
    if args.mask_out:
        if field.mask is None:
            print("(dataset has no mask; --mask-out ignored)")
        else:
            np.save(args.mask_out, field.mask)
            print(f"mask -> {args.mask_out}")
    return 0


def cmd_experiment(args) -> int:
    import importlib

    from repro.experiments import ALL_EXPERIMENTS

    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; available:")
        for name, desc in ALL_EXPERIMENTS.items():
            print(f"  {name:26s} {desc}")
        return 1
    module = importlib.import_module(f"repro.experiments.{args.name}")
    run = _obs_begin(args)
    module.run().print()
    _obs_end(args, run)
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments import sweep

    return sweep.run_from_args(args)


def cmd_obs(args) -> int:
    from repro.obs import report

    return report.run_from_args(args)


def cmd_service(args) -> int:
    from repro.service.__main__ import main as service_main

    return service_main(args.service_args)


def cmd_codecs(args) -> int:
    from repro import COMPRESSORS

    for name, cls in sorted(COMPRESSORS.items()):
        bound = getattr(cls, "pointwise_bound", True)
        print(f"{name:12s} {cls.__name__:14s} pointwise bound: {'yes' if bound else 'no'}")
    return 0


# ------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CliZ reproduction toolkit (IPDPS 2024)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_eb(p):
        p.add_argument("--rel-eb", type=float, default=None,
                       help="relative error bound (fraction of value range)")
        p.add_argument("--abs-eb", type=float, default=None,
                       help="absolute pointwise error bound")

    def add_resilience(p):
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: serial)")
        p.add_argument("--retries", type=int, default=None,
                       help="per-job retries with exponential backoff")
        p.add_argument("--retry-backoff", type=float, default=None,
                       help="base backoff seconds between retries (doubles each try)")
        p.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic fault spec, e.g. "
                            "'seed=7;crash:p=0.5;bitflip:only=2' (see docs/ROBUSTNESS.md)")

    def add_obs(p):
        p.add_argument("--profile", action="store_true",
                       help="print a per-stage time/bytes table to stderr")
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write trace spans as JSONL (one span per line)")
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics snapshot as JSONL (one metric per line)")
        p.add_argument("--chrome-out", default=None, metavar="FILE",
                       help="write a Chrome-trace JSON file "
                            "(chrome://tracing / ui.perfetto.dev)")
        p.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                       help="serve live telemetry over HTTP while the command "
                            "runs (Prometheus /metrics; 0 = ephemeral port)")

    p = sub.add_parser("compress", help="compress a .npy array")
    p.add_argument("input"), p.add_argument("output")
    p.add_argument("--codec", default="cliz")
    p.add_argument("--mask", default=None, help=".npy boolean mask (True = valid)")
    p.add_argument("--chunks", type=int, default=None,
                   help="split into N chunks and compress them in parallel")
    p.add_argument("--chunk-axis", type=int, default=0,
                   help="axis to split along (with --chunks)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-chunk timeout in seconds (with --chunks)")
    add_resilience(p)
    add_obs(p)
    add_eb(p)
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("decompress", help="decompress a blob to .npy")
    p.add_argument("input"), p.add_argument("output")
    p.add_argument("--salvage", action="store_true",
                   help="tolerate corrupt chunks: NaN-fill them and report "
                        "instead of failing (chunked blobs)")
    p.add_argument("--salvage-report", default=None, metavar="FILE",
                   help="write the machine-readable salvage report JSON here")
    add_resilience(p)
    add_obs(p)
    p.set_defaults(func=cmd_decompress)

    p = sub.add_parser("info", help="inspect a compressed blob")
    p.add_argument("input")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("tune", help="auto-tune a CliZ pipeline")
    p.add_argument("input")
    p.add_argument("--mask", default=None)
    p.add_argument("--sampling-rate", type=float, default=0.01)
    p.add_argument("--time-axis", type=int, default=None)
    p.add_argument("--horiz-axes", default=None, help="e.g. 0,1")
    p.add_argument("--max-layouts", type=int, default=None)
    p.add_argument("--save-config", default=None, help="write winning pipeline JSON here")
    add_eb(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("assess", help="quality report original vs reconstruction")
    p.add_argument("original"), p.add_argument("reconstructed")
    p.add_argument("--mask", default=None)
    p.add_argument("--abs-eb", type=float, default=None,
                   help="also run the acceptance test against this bound")
    p.set_defaults(func=cmd_assess)

    p = sub.add_parser("dataset", help="generate a synthetic Table-III dataset")
    p.add_argument("name")
    p.add_argument("--out", required=True)
    p.add_argument("--mask-out", default=None)
    p.set_defaults(func=cmd_dataset)

    p = sub.add_parser("experiment", help="run a paper experiment harness")
    p.add_argument("name")
    add_obs(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "sweep",
        help="kill-resumable experiment sweep (journaled ledger + --resume)")
    from repro.experiments.sweep import add_arguments as _add_sweep_args

    _add_sweep_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "obs",
        help="offline telemetry analysis: report / top / critical-path / diff")
    from repro.obs.report import add_arguments as _add_obs_args

    _add_obs_args(p)
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "service",
        help="compression-as-a-service: serve the HTTP API or chaos-drill it")
    p.add_argument("service_args", nargs=argparse.REMAINDER,
                   help="arguments for repro.service (serve / drill ...)")
    p.set_defaults(func=cmd_service)

    p = sub.add_parser("codecs", help="list registered codecs")
    p.set_defaults(func=cmd_codecs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
