"""Durable atomic file I/O — the crash-consistency primitive.

The contract of :func:`atomic_write`: whatever instant the process dies
(power cut, SIGKILL, OOM kill), a later reader of ``path`` sees either
the complete previous contents or the complete new contents — never a
truncated hybrid. The classic recipe:

1. write the payload to a temp file *in the same directory* (same
   filesystem, so the final rename is atomic);
2. ``fsync`` the temp file (data durable before it becomes visible);
3. ``os.replace`` it over the destination (atomic on POSIX and Windows);
4. ``fsync`` the directory (the *rename itself* durable).

Crash points are injectable: pass a :class:`KillPoint` (normally planned
by :meth:`repro.faults.FaultInjector.kill_directive`) and the writer dies
at the requested stage — ``mid_write`` (half the payload in the temp
file), ``pre_commit`` (temp complete, rename not executed) or
``post_commit`` (renamed, directory not yet fsynced — the window where
the artifact exists but its ledger record does not). ``hard`` kills are a
real ``SIGKILL`` to our own pid, used by the subprocess crash tests; soft
kills raise :class:`InjectedKillError` so in-process tests can observe the
same on-disk states.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "KILL_POINTS",
    "KillPoint",
    "InjectedKillError",
    "atomic_write",
    "fsync_dir",
    "heal_jsonl_tail",
]

#: Valid crash stages, in the order they occur inside :func:`atomic_write`.
KILL_POINTS = ("mid_write", "pre_commit", "post_commit")


class InjectedKillError(RuntimeError):
    """Raised by a *soft* injected kill (in-process crash simulation)."""

    def __init__(self, at: str) -> None:
        super().__init__(f"injected kill at {at}")
        self.at = at


@dataclass(frozen=True)
class KillPoint:
    """Directive: die at stage ``at`` of the next guarded write.

    ``hard=True`` sends ``SIGKILL`` to the current process — the on-disk
    state is exactly what a power cut at that stage leaves behind.
    ``hard=False`` raises :class:`InjectedKillError` instead (the file
    state is identical; only the blast radius differs).
    """

    at: str = "pre_commit"
    hard: bool = True

    def __post_init__(self) -> None:
        if self.at not in KILL_POINTS:
            raise ValueError(
                f"unknown kill point {self.at!r}; known: {', '.join(KILL_POINTS)}")

    def fire(self) -> None:
        if self.hard:  # pragma: no cover - kills the test runner by design
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedKillError(self.at)


def fsync_dir(path) -> None:
    """fsync a directory so a rename inside it is durable.

    Filesystems that refuse directory fds (some network/overlay mounts)
    degrade gracefully: durability then rests on the payload fsync alone.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path, data, *, fsync: bool = True,
                 kill: KillPoint | None = None) -> Path:
    """Durably and atomically write ``data`` (bytes or str) to ``path``.

    The temp file lives next to the destination (``.<name>.<pid>.tmp``) so
    the final ``os.replace`` never crosses a filesystem boundary. A crash
    mid-call leaves at worst a stale temp file, which a later successful
    write of the same path removes on its own replace; the destination is
    only ever a complete old or complete new version.

    ``fsync=False`` skips both fsyncs (payload and directory) — for bulk
    test fixtures where durability does not matter and syscall cost does.
    ``kill`` injects a crash at the given stage (see module docstring).
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        if kill is not None and kill.at == "mid_write":
            os.write(fd, data[: len(data) // 2])
            os.close(fd)
            kill.fire()
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        try:
            os.close(fd)
        except OSError:
            pass  # already closed on the mid_write path
    if kill is not None and kill.at == "pre_commit":
        kill.fire()
    os.replace(tmp, path)
    if kill is not None and kill.at == "post_commit":
        kill.fire()
    if fsync:
        fsync_dir(path.parent)
    return path


def heal_jsonl_tail(path) -> int:
    """Truncate a torn trailing line off an append-only JSONL file.

    A crash mid-append leaves a final line without a terminating newline
    (possibly half a JSON record). Appending more records after it would
    fuse two records into one unparseable line, so writers call this
    before appending: the file is truncated back to the last complete
    line. Returns the number of bytes dropped (0 when the tail is clean).

    Only the *unterminated* tail is touched — complete lines are never
    rewritten, which preserves the append-only audit property.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return 0
    if size == 0:
        return 0
    with open(path, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        if fh.read(1) == b"\n":
            return 0
        # walk back in blocks to find the last newline
        pos = size
        block = 4096
        last_nl = -1
        while pos > 0 and last_nl < 0:
            step = min(block, pos)
            pos -= step
            fh.seek(pos)
            chunk = fh.read(step)
            idx = chunk.rfind(b"\n")
            if idx >= 0:
                last_nl = pos + idx
        keep = last_nl + 1 if last_nl >= 0 else 0
        fh.truncate(keep)
        fh.flush()
        os.fsync(fh.fileno())
        return size - keep
