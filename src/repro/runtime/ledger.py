"""The run ledger — an append-only, crash-consistent JSONL journal.

One ledger file (``ledger.jsonl``) records the lifecycle of every work
unit ("cell") of a long-running job::

    {"rec": "cell", "cell": "<id>", "status": "planned",  "meta": {...}}
    {"rec": "cell", "cell": "<id>", "status": "running",  "attempt": 1}
    {"rec": "cell", "cell": "<id>", "status": "done",
     "artifact": "cells/<id>.json", "digest": "<blake2b>", "attempts": 1}
    {"rec": "cell", "cell": "<id>", "status": "failed",
     "error": "...", "error_type": "...", "attempts": 3}
    {"rec": "event", "kind": "breaker_open", ...}

Crash-consistency invariants (docs/ROBUSTNESS.md):

* **Commit ordering** — an artifact is atomically committed *before* its
  ``done`` record is appended. Replay is therefore conservative: a
  ``done`` record proves the artifact exists and matches its digest; an
  artifact without a ``done`` record is recomputed (idempotent cells make
  that safe).
* **Torn tail** — a crash mid-append leaves at worst one unterminated
  final line. :func:`replay_ledger` skips it (counted, warned); writers
  truncate it via :func:`~repro.runtime.durable.heal_jsonl_tail` before
  appending, so complete records are never corrupted by later appends.
* **No rewrites** — records are only ever appended; state is the fold of
  the record sequence, so replay after any prefix of appends is a valid
  (earlier) state.

The ledger stays deliberately wall-clock-free: records contain logical
fields only (status, attempts, digests), so an interrupted-and-resumed
run converges to the same *replayed state* as an uninterrupted one — the
determinism contract the sweep resume test enforces.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime.durable import fsync_dir, heal_jsonl_tail

__all__ = [
    "LEDGER_FILENAME",
    "RunLedger",
    "LedgerState",
    "replay_ledger",
    "blake2b_file",
    "blake2b_bytes",
]

LEDGER_FILENAME = "ledger.jsonl"

#: Cell lifecycle states, in order; later records win on replay.
CELL_STATUSES = ("planned", "running", "done", "failed")


def blake2b_bytes(data: bytes) -> str:
    """Content digest used for artifact integrity (hex, 128-bit BLAKE2b)."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def blake2b_file(path) -> str | None:
    """Digest a file's contents; None when the file is missing."""
    try:
        return blake2b_bytes(Path(path).read_bytes())
    except FileNotFoundError:
        return None


class RunLedger:
    """Appender for one ledger file. Each append is durable on return.

    ``fsync=False`` trades durability for speed (unit tests); the record
    ordering and torn-tail healing behave identically.
    """

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._healed_bytes = heal_jsonl_tail(self.path)

    @property
    def healed_bytes(self) -> int:
        """Bytes of torn tail truncated when this appender opened the file."""
        return self._healed_bytes

    # ------------------------------------------------------------------ #
    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        existed = self.path.exists()
        with open(self.path, "ab") as fh:
            fh.write(line.encode("utf-8"))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        if self.fsync and not existed:
            fsync_dir(self.path.parent)

    # ------------------------------------------------------------------ #
    def planned(self, cell: str, meta: dict | None = None) -> None:
        self.append({"rec": "cell", "cell": cell, "status": "planned",
                     "meta": meta or {}})

    def running(self, cell: str, attempt: int) -> None:
        self.append({"rec": "cell", "cell": cell, "status": "running",
                     "attempt": int(attempt)})

    def done(self, cell: str, artifact: str, digest: str, attempts: int) -> None:
        """Record completion. MUST be called only after the artifact named
        here has been atomically committed (the commit-ordering invariant)."""
        self.append({"rec": "cell", "cell": cell, "status": "done",
                     "artifact": artifact, "digest": digest,
                     "attempts": int(attempts)})

    def failed(self, cell: str, error: str, error_type: str, attempts: int) -> None:
        self.append({"rec": "cell", "cell": cell, "status": "failed",
                     "error": error, "error_type": error_type,
                     "attempts": int(attempts)})

    def event(self, kind: str, **fields) -> None:
        """Non-cell occurrences: breaker trips, deadline shedding, resume."""
        self.append({"rec": "event", "kind": kind, **fields})


# ---------------------------------------------------------------------- #
@dataclass
class LedgerState:
    """The fold of a ledger's record sequence (see :func:`replay_ledger`)."""

    cells: dict[str, dict] = field(default_factory=dict)  # id -> last record
    events: list[dict] = field(default_factory=list)
    records: int = 0
    torn_lines: int = 0
    invalid_lines: int = 0

    def status(self, cell: str) -> str | None:
        rec = self.cells.get(cell)
        return rec["status"] if rec else None

    def record(self, cell: str) -> dict | None:
        return self.cells.get(cell)

    def by_status(self, status: str) -> list[str]:
        return [c for c, r in self.cells.items() if r["status"] == status]

    def verified_done(self, cell: str, root) -> bool:
        """True when the cell is ``done`` AND its artifact still exists with
        the recorded digest — the conservative skip condition on resume."""
        rec = self.cells.get(cell)
        if rec is None or rec["status"] != "done":
            return False
        return blake2b_file(Path(root) / rec["artifact"]) == rec["digest"]


def replay_ledger(path) -> LedgerState:
    """Rebuild ledger state from the journal, tolerating a torn tail.

    An unparseable or schema-invalid line is skipped with a counted
    ``RuntimeWarning`` rather than raising: the torn *final* line is the
    expected crash signature (counted in ``torn_lines``); any other bad
    line is counted in ``invalid_lines`` (it can only arise from external
    damage — healed appends never produce one).
    """
    state = LedgerState()
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return state
    if not raw:
        return state
    lines = raw.split(b"\n")
    torn_tail = lines and lines[-1] != b""  # no trailing newline: torn append
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        is_final = i == len(lines) - 1
        try:
            rec = json.loads(line)
            if not isinstance(rec, dict) or "rec" not in rec:
                raise ValueError("not a ledger record object")
            if rec["rec"] == "cell" and (
                    "cell" not in rec or rec.get("status") not in CELL_STATUSES):
                raise ValueError("malformed cell record")
        except (ValueError, UnicodeDecodeError) as exc:
            if is_final and torn_tail:
                state.torn_lines += 1
                warnings.warn(
                    f"{path}: skipping torn final ledger line ({exc})",
                    RuntimeWarning, stacklevel=2)
            else:
                state.invalid_lines += 1
                warnings.warn(
                    f"{path}:{i + 1}: skipping invalid ledger line ({exc})",
                    RuntimeWarning, stacklevel=2)
            continue
        state.records += 1
        if rec["rec"] == "event":
            state.events.append(rec)
        else:
            state.cells[rec["cell"]] = rec
    return state
