"""repro.runtime — crash-consistent durable I/O and the journaled run ledger.

Everything in this package is pure stdlib (no numpy), so it imports on a
bare interpreter — the same constraint :mod:`repro.analysis` honours — and
can be reused by any layer without pulling in the scientific stack.

Two building blocks:

* :func:`atomic_write` / :func:`fsync_dir` — the durable-I/O primitive
  every artifact writer in the repo routes through (enforced by the
  DUR-001 lint rule). A crash at *any* point leaves either the old file
  or the new file, never a torn hybrid.
* :class:`RunLedger` — an append-only JSONL journal of work-unit
  lifecycles (``planned -> running -> done | failed``) whose replay is
  tolerant of a torn final line, the substrate of the kill-resumable
  sweep driver (:mod:`repro.experiments.sweep`).

See ``docs/ROBUSTNESS.md`` ("Checkpoint & resume") for the commit-ordering
invariant and ``docs/FORMATS.md`` for the ledger record schema.
"""

from repro.runtime.durable import (
    InjectedKillError,
    KillPoint,
    atomic_write,
    fsync_dir,
    heal_jsonl_tail,
)
from repro.runtime.ledger import (
    LedgerState,
    RunLedger,
    blake2b_file,
    replay_ledger,
)

__all__ = [
    "atomic_write",
    "fsync_dir",
    "heal_jsonl_tail",
    "KillPoint",
    "InjectedKillError",
    "RunLedger",
    "LedgerState",
    "replay_ledger",
    "blake2b_file",
]
