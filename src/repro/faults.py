"""repro.faults — deterministic, seedable fault injection.

The paper's headline scenario (§VII-C4) is a 1024-core compress-and-
transfer pipeline over a WAN — a regime where worker crashes, corrupted
blobs, and link outages are routine. This module makes those failures
*injectable* so the resilience machinery in ``repro.parallel``,
``repro.encoding.container`` (salvage mode), and ``repro.transfer`` can be
exercised deterministically: every decision is a pure function of
``(seed, fault kind, subject key)``, so the same spec reproduces the same
faults — and therefore byte-identical telemetry counts — regardless of
worker scheduling, process ids, or wall-clock time.

Fault spec grammar (the CLI's ``--inject-faults`` argument)::

    spec    := clause (';' clause)*
    clause  := 'seed=' INT
             | KIND (':' key '=' value)*
    KIND    := 'crash' | 'slow' | 'bitflip' | 'truncate' | 'outage'
             | 'drop' | 'kill' | 'stall' | 'bloberr' | 'abort'
             | 'shardkill'

Clauses and their parameters (all optional, with defaults):

========  =======================================================
crash     ``p`` (prob/job, 1.0), ``attempts`` (leading attempts
          that crash, 1) — pool workers die hard (``os._exit``),
          serial jobs raise :class:`FaultInjectedError`.
slow      ``p`` (1.0), ``delay`` (seconds, 0.1) — worker sleeps
          before doing its work.
bitflip   ``p`` (1.0), ``n`` (bits per blob, 1) — storage bit rot.
truncate  ``p`` (1.0), ``frac`` (fraction kept, 0.5).
outage    ``at`` (start, s), ``dur`` (length, s) — WAN link dead
          window; repeat the clause for multiple windows.
drop      ``p`` (per-delivery drop prob, 0.1), ``max`` (transmit
          attempts, 4), ``backoff`` (base retransmit delay, 0.5).
kill      ``p`` (1.0), ``at`` (``pre_commit`` | ``post_commit`` |
          ``mid_write``, default ``pre_commit``), ``hard`` (1),
          ``only`` — the process dies (``SIGKILL``; ``hard=0``
          raises instead) at that stage of the next guarded
          :func:`repro.runtime.atomic_write`. Exercises
          crash-consistency and ledger resume.
stall     ``p`` (1.0), ``delay`` (seconds, 0.25) — a service
          request handler sleeps ``delay`` seconds before doing
          its work (exercises deadlines and queue backpressure).
bloberr   ``p`` (1.0), ``op`` (``read`` | ``write`` | ``any``,
          default ``any``) — a blob-store I/O operation raises
          ``OSError`` (the service degrades it to 503).
abort     ``p`` (1.0) — the client vanishes mid-request: the
          service drops the connection without a response and
          must clean up without corrupting anything.
shardkill ``p`` (1.0), ``shard`` (target shard index; -1 =
          derive from the hash, default -1), ``only`` — at drill
          step ``index``, SIGKILL one shard of the service
          cluster mid-request. The decision (fire? which shard?)
          is a pure function of ``(seed, index)``, so the
          shard-kill chaos drill replays byte-identically.
========  =======================================================

Example: ``seed=42;crash:p=0.3;bitflip:p=1:n=2;outage:at=5:dur=2``;
a sweep crash drill: ``seed=7;kill:only=2:at=post_commit``; a service
chaos drill: ``seed=9;stall:p=0.2:delay=0.3;bloberr:p=0.1;abort:p=0.1``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.runtime.durable import KILL_POINTS, KillPoint

__all__ = [
    "FaultInjectedError",
    "FaultSpecError",
    "JobFaults",
    "LinkFaults",
    "KillPoint",
    "FaultInjector",
    "parse_fault_spec",
]

_KINDS = ("crash", "slow", "bitflip", "truncate", "outage", "drop", "kill",
          "stall", "bloberr", "abort", "shardkill")

#: Allowed parameters (and their types) per fault kind. ``only`` (where
#: accepted) pins the fault to a single subject index — job index, blob
#: index, or WAN flow index — for precise scenario construction.
_PARAMS: dict[str, dict[str, type]] = {
    "crash": {"p": float, "attempts": int, "only": int},
    "slow": {"p": float, "delay": float, "only": int},
    "bitflip": {"p": float, "n": int, "only": int},
    "truncate": {"p": float, "frac": float, "only": int},
    "outage": {"at": float, "dur": float},
    "drop": {"p": float, "max": int, "backoff": float, "only": int},
    "kill": {"p": float, "at": str, "hard": int, "only": int},
    "stall": {"p": float, "delay": float, "only": int},
    "bloberr": {"p": float, "op": str, "only": int},
    "abort": {"p": float, "only": int},
    "shardkill": {"p": float, "shard": int, "only": int},
}

#: Valid values for bloberr's ``op`` parameter.
_BLOB_OPS = ("read", "write", "any")

_DEFAULTS: dict[str, dict] = {
    "crash": {"p": 1.0, "attempts": 1},
    "slow": {"p": 1.0, "delay": 0.1},
    "bitflip": {"p": 1.0, "n": 1},
    "truncate": {"p": 1.0, "frac": 0.5},
    "outage": {"at": 0.0, "dur": 1.0},
    "drop": {"p": 0.1, "max": 4, "backoff": 0.5},
    "kill": {"p": 1.0, "at": "pre_commit", "hard": 1},
    "stall": {"p": 1.0, "delay": 0.25},
    "bloberr": {"p": 1.0, "op": "any"},
    "abort": {"p": 1.0},
    "shardkill": {"p": 1.0, "shard": -1},
}


class FaultSpecError(ValueError):
    """A ``--inject-faults`` spec string failed to parse."""


def _merge_clause(kind: str, params: dict, token: str | None = None) -> dict:
    """Validate one ``(kind, params)`` clause against the grammar.

    ``token`` is the raw clause text from a spec string; every error
    message names it, so a bad clause inside a multi-fault spec like
    ``crash:p=0.5;slw:delay=1`` points at *its* token, not just the kind.
    """
    where = f" (offending token {token!r})" if token else ""
    if kind not in _KINDS:
        raise FaultSpecError(f"unknown fault kind {kind!r}{where}; "
                             f"valid kinds: {', '.join(_KINDS)}")
    merged = dict(_DEFAULTS[kind])
    for key, value in params.items():
        if key not in _PARAMS[kind]:
            raise FaultSpecError(
                f"fault {kind!r} has no parameter {key!r}{where}; "
                f"allowed: {', '.join(_PARAMS[kind])}")
        try:
            merged[key] = _PARAMS[kind][key](value)
        except (TypeError, ValueError):
            raise FaultSpecError(
                f"fault {kind!r}: parameter {key!r} needs a "
                f"{_PARAMS[kind][key].__name__}, got {value!r}{where}") from None
    if kind == "kill" and merged["at"] not in KILL_POINTS:
        raise FaultSpecError(
            f"kill fault: at must be one of {', '.join(KILL_POINTS)}, "
            f"got {merged['at']!r}{where}")
    if kind == "bloberr" and merged["op"] not in _BLOB_OPS:
        raise FaultSpecError(
            f"bloberr fault: op must be one of {', '.join(_BLOB_OPS)}, "
            f"got {merged['op']!r}{where}")
    return merged


class FaultInjectedError(RuntimeError):
    """Raised (in serial execution) in place of a hard worker crash."""


def _stable_u64(seed: int, *parts) -> int:
    """A 64-bit hash of ``(seed, parts...)``, stable across processes/runs."""
    msg = "|".join(str(p) for p in parts).encode()
    h = hashlib.blake2b(msg, digest_size=8, key=str(seed).encode()[:64])
    return int.from_bytes(h.digest(), "little")


def _uniform(seed: int, *parts) -> float:
    """Deterministic uniform in [0, 1) keyed on ``(seed, parts...)``."""
    return _stable_u64(seed, *parts) / 2.0**64


@dataclass(frozen=True)
class JobFaults:
    """Directives for one (scope, job-index): planned in the dispatcher,
    applied by the worker. Picklable by construction."""

    crash_attempts: int = 0  # attempts 1..crash_attempts die
    delay: float = 0.0  # seconds of injected slowness per attempt

    @property
    def any(self) -> bool:
        return self.crash_attempts > 0 or self.delay > 0.0


@dataclass(frozen=True)
class LinkFaults:
    """WAN-link fault model consumed by the fair-share event loop."""

    outages: tuple[tuple[float, float], ...] = ()  # (start, end) windows
    drop_p: float = 0.0  # per-delivery corruption/drop probability
    max_attempts: int = 4  # transmit attempts before giving up gracefully
    backoff: float = 0.5  # base retransmit delay (doubles per attempt)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_p <= 1.0:
            raise ValueError("drop_p must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        for start, end in self.outages:
            if end < start or start < 0:
                raise ValueError(f"bad outage window ({start}, {end})")

    only: int | None = None  # restrict drops to one flow index

    def dropped(self, flow: int, attempt: int) -> bool:
        """Deterministic: is delivery ``attempt`` of ``flow`` dropped?"""
        if attempt >= self.max_attempts:
            return False  # exhausted: deliver (callers count this)
        if self.only is not None and flow != self.only:
            return False
        return _uniform(self.seed, "drop", flow, attempt) < self.drop_p

    def retransmit_delay(self, attempt: int) -> float:
        return self.backoff * (2.0 ** (attempt - 1))


class FaultInjector:
    """Deterministic fault planner shared by every resilient layer.

    One injector holds the parsed clauses plus the seed; decision methods
    are pure functions of their arguments, so dispatchers can plan faults
    before submitting work and workers merely *apply* directives.
    """

    def __init__(self, clauses: list | None = None, seed: int = 0) -> None:
        self.seed = int(seed)
        self.clauses: list[tuple[str, dict]] = []
        for clause in clauses or []:
            kind, params, *token = clause
            self.clauses.append(
                (kind, _merge_clause(kind, params, *token)))

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        return parse_fault_spec(spec)

    def _clause(self, kind: str) -> dict | None:
        for k, params in self.clauses:
            if k == kind:
                return params
        return None

    @staticmethod
    def _applies(params: dict, index: int | None) -> bool:
        """Honour the ``only`` parameter: fault pinned to one subject index."""
        return "only" not in params or (index is not None and params["only"] == index)

    # ------------------------------------------------------------------ #
    # Worker faults (planned by the dispatcher in repro.parallel).
    def job_faults(self, scope: str, index: int) -> JobFaults:
        """Directives for job ``index`` under dispatch scope ``scope``."""
        crash_attempts = 0
        delay = 0.0
        crash = self._clause("crash")
        if (crash is not None and self._applies(crash, index)
                and _uniform(self.seed, "crash", scope, index) < crash["p"]):
            crash_attempts = crash["attempts"]
        slow = self._clause("slow")
        if (slow is not None and self._applies(slow, index)
                and _uniform(self.seed, "slow", scope, index) < slow["p"]):
            delay = slow["delay"]
        return JobFaults(crash_attempts=crash_attempts, delay=delay)

    # ------------------------------------------------------------------ #
    # Storage faults (bit rot on compressed blobs).
    def corrupt_blob(self, blob: bytes, key: str,
                     index: int | None = None) -> tuple[bytes, list[dict]]:
        """Apply bitflip/truncate clauses to ``blob``; returns the (possibly
        unchanged) bytes plus a machine-readable list of applied events."""
        events: list[dict] = []
        out = blob
        flip = self._clause("bitflip")
        if (flip is not None and self._applies(flip, index)
                and _uniform(self.seed, "bitflip", key) < flip["p"] and out):
            rng = np.random.default_rng(_stable_u64(self.seed, "bitflip.rng", key))
            buf = bytearray(out)
            bits = rng.integers(0, len(buf) * 8, size=max(1, flip["n"]))
            for bit in bits:
                buf[int(bit) // 8] ^= 1 << (int(bit) % 8)
            out = bytes(buf)
            events.append({"fault": "bitflip", "key": key,
                           "bits": sorted(int(b) for b in bits)})
        trunc = self._clause("truncate")
        if (trunc is not None and self._applies(trunc, index)
                and _uniform(self.seed, "truncate", key) < trunc["p"] and out):
            keep = max(1, int(len(out) * trunc["frac"]))
            if keep < len(out):
                out = out[:keep]
                events.append({"fault": "truncate", "key": key, "kept": keep})
        return out, events

    # ------------------------------------------------------------------ #
    # Process-kill faults (consumed by repro.runtime.atomic_write via the
    # sweep driver): die at a chosen stage of an artifact commit.
    def kill_directive(self, key: str, index: int | None = None) -> KillPoint | None:
        """Should the guarded write identified by ``key`` crash, and where?

        Deterministic in ``(seed, key)``; ``only=<index>`` pins the kill
        to one subject (e.g. the N-th sweep cell). Returns a
        :class:`~repro.runtime.durable.KillPoint` or None.
        """
        clause = self._clause("kill")
        if clause is None or not self._applies(clause, index):
            return None
        if _uniform(self.seed, "kill", key) >= clause["p"]:
            return None
        return KillPoint(at=clause["at"], hard=bool(clause["hard"]))

    # ------------------------------------------------------------------ #
    # Service faults (consumed by repro.service): handler stalls, blob
    # I/O errors, client aborts — all pure functions of (seed, subject).
    def handler_delay(self, index: int) -> float:
        """Injected seconds of slowness for service request ``index``."""
        stall = self._clause("stall")
        if (stall is not None and self._applies(stall, index)
                and _uniform(self.seed, "stall", index) < stall["p"]):
            return stall["delay"]
        return 0.0

    def blob_error(self, op: str, index: int) -> bool:
        """Should blob-store operation ``index`` (``op`` = read|write) fail?"""
        clause = self._clause("bloberr")
        if clause is None or not self._applies(clause, index):
            return False
        if clause["op"] != "any" and clause["op"] != op:
            return False
        return _uniform(self.seed, "bloberr", index) < clause["p"]

    def abort_request(self, index: int) -> bool:
        """Should the client of service request ``index`` vanish mid-flight?"""
        clause = self._clause("abort")
        if clause is None or not self._applies(clause, index):
            return False
        return _uniform(self.seed, "abort", index) < clause["p"]

    def shard_kill(self, index: int, n_shards: int = 1) -> int | None:
        """SIGKILL a cluster shard at drill step ``index``? Which one?

        Returns the doomed shard's index, or ``None``. Pure in
        ``(seed, index, n_shards)``: an explicit ``shard=`` parameter
        pins the victim; otherwise it is hash-derived, so the same seed
        always condemns the same shard — the drill and its expectation
        model agree on the victim without communicating.
        """
        clause = self._clause("shardkill")
        if clause is None or not self._applies(clause, index):
            return None
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if _uniform(self.seed, "shardkill", index) >= clause["p"]:
            return None
        if clause["shard"] >= 0:
            return int(clause["shard"]) % n_shards
        return int(_stable_u64(self.seed, "shardkill.target", index)
                   % n_shards)

    # ------------------------------------------------------------------ #
    # WAN faults (consumed by repro.transfer.network).
    def link_faults(self) -> LinkFaults | None:
        """Collapse outage/drop clauses into a :class:`LinkFaults`, or None."""
        outages = tuple(sorted(
            (params["at"], params["at"] + params["dur"])
            for kind, params in self.clauses if kind == "outage"
        ))
        drop = self._clause("drop")
        if not outages and drop is None:
            return None
        drop = drop or {"p": 0.0, "max": 4, "backoff": 0.5}
        return LinkFaults(outages=outages, drop_p=drop["p"],
                          max_attempts=drop["max"], backoff=drop["backoff"],
                          seed=self.seed, only=drop.get("only"))

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for kind, params in self.clauses:
            args = ":".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                            for k, v in sorted(params.items()))
            parts.append(f"{kind}:{args}" if args else kind)
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.describe()!r})"


def parse_fault_spec(spec: str) -> FaultInjector:
    """Parse a fault spec string (grammar in the module docstring)."""
    if not isinstance(spec, str) or not spec.strip():
        raise FaultSpecError("empty fault spec")
    seed = 0
    clauses: list[tuple[str, dict, str]] = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[5:])
            except ValueError:
                raise FaultSpecError(
                    f"bad seed (offending token {clause!r}); "
                    "expected seed=<int>") from None
            continue
        parts = clause.split(":")
        kind = parts[0].strip()
        params: dict = {}
        for part in parts[1:]:
            if "=" not in part:
                raise FaultSpecError(
                    f"bad parameter {part!r} (offending token {clause!r}); "
                    "expected key=value")
            key, _, value = part.partition("=")
            try:
                params[key.strip()] = float(value)
            except ValueError:
                # symbolic values (e.g. kill's at=pre_commit) stay strings;
                # _merge_clause type-checks them against the kind's schema
                params[key.strip()] = value.strip()
        # carry the raw clause token so validation errors can name it
        clauses.append((kind, params, clause))
    return FaultInjector(clauses, seed=seed)
