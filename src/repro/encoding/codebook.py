"""Huffman codebook reuse across chunk jobs.

``compress_chunked`` splits one array into near-identical chunks; without
help, every chunk job rebuilds its Huffman codebooks (bincount + heap +
length-limiting) from its own symbol statistics even though the
distributions barely differ. This module lets the dispatcher record the
codebooks built for the *first* chunk and hand a frozen, picklable copy
to the remaining chunk jobs, which reuse a recorded book whenever it can
still encode their symbols (every symbol has a codeword) and fall back
to a fresh build otherwise. Streams stay fully self-describing — the
(possibly reused) table is still serialized into every chunk blob — so
decode needs no cache and old blobs remain readable.

Books are keyed by the deterministic *call sequence* within one codec
invocation (stream/group kind + ordinal). Chunk compression is
deterministic for a fixed config, so the k-th codebook request of chunk
j aligns with the k-th request of chunk 0; if a chunk diverges (e.g. a
different group count), lookups miss and the build fallback keeps the
output correct.

The cache is activated per job via a context variable
(:func:`activate`); with no active cache the encoders behave exactly as
before. Decisions are counted in ``huffman.codebook_built`` /
``codebook_reused`` / ``codebook_rebuilt``.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

import numpy as np

from repro.encoding.huffman import HuffmanCode
from repro.obs import inc_counter

__all__ = ["CodebookCache", "activate", "active_cache"]

_ACTIVE: ContextVar["CodebookCache | None"] = ContextVar(
    "repro_codebook_cache", default=None)

# Recording-time alphabet padding: neighbouring chunks of one array draw
# from nearly the same code distribution, but their *support* differs —
# a symbol unseen in chunk 0 has no codeword and would force a rebuild.
# Pseudo-count-1 entries fill gaps of up to _GAP between observed symbols
# and extend each dense run by _MARGIN on both ends, so slightly-wider
# sibling distributions stay coverable. Cost: a handful of ~max-depth
# codewords and a few extra (LZ-friendly) zero bytes of table.
_GAP = 256
_MARGIN = 64


def _padded_counts(symbols: np.ndarray) -> np.ndarray:
    counts = np.bincount(symbols)
    observed = np.flatnonzero(counts)
    if observed.size == 0:  # pragma: no cover - encoders skip empty streams
        return counts
    pad = np.zeros(int(observed[-1]) + 1 + _MARGIN, dtype=counts.dtype)
    pad[: counts.size] = counts
    gaps = np.diff(observed)
    for start, gap in zip(observed[:-1][gaps > 1], gaps[gaps > 1]):
        if gap <= _GAP:
            pad[start + 1 : start + gap] = 1
    runs = np.concatenate(([0], np.flatnonzero(gaps > _GAP) + 1, [observed.size]))
    for lo, hi in zip(runs[:-1], runs[1:]):
        a, b = int(observed[lo]), int(observed[hi - 1])
        pad[max(0, a - _MARGIN) : a][pad[max(0, a - _MARGIN) : a] == 0] = 1
        pad[b + 1 : b + 1 + _MARGIN][pad[b + 1 : b + 1 + _MARGIN] == 0] = 1
    return pad


def _covers(code: HuffmanCode, symbols: np.ndarray) -> bool:
    """True when every symbol has a codeword (the stream stays decodable)."""
    if symbols.size == 0:
        return True
    if int(symbols.max()) >= code.alphabet_size:
        return False
    return bool(code.lengths[symbols].all())


class CodebookCache:
    """Records codebooks on the first chunk, replays them on the rest.

    ``CodebookCache()`` starts in *recording* mode: every request builds
    a fresh code and stores its length table. ``CodebookCache(state)``
    (with ``state`` from :meth:`state`) starts in *reuse* mode: requests
    replay the recorded book when it covers the symbols, else rebuild.
    """

    def __init__(self, state: dict[str, tuple[int, bytes]] | None = None) -> None:
        self.recording = state is None
        self._lengths: dict[str, np.ndarray] = {}
        self._codes: dict[str, HuffmanCode] = {}
        self._seq = 0
        if state is not None:
            for key, (alphabet, raw) in state.items():
                lengths = np.frombuffer(raw, dtype=np.uint8).copy()
                if lengths.size != alphabet:
                    raise ValueError(f"codebook state {key!r} is inconsistent")
                self._lengths[key] = lengths

    def state(self) -> dict[str, tuple[int, bytes]]:
        """Picklable snapshot of the recorded books (length tables only)."""
        return {key: (int(lengths.size), lengths.tobytes())
                for key, lengths in self._lengths.items()}

    def code_for(self, kind: str, symbols: np.ndarray) -> HuffmanCode:
        """The codebook to encode ``symbols`` with at this call position."""
        key = f"{kind}:{self._seq}"
        self._seq += 1
        if self.recording:
            code = HuffmanCode.from_frequencies(_padded_counts(symbols))
            self._lengths[key] = code.lengths
            inc_counter("huffman.codebook_built")
            return code
        lengths = self._lengths.get(key)
        if lengths is not None:
            code = self._codes.get(key)
            if code is None:
                code = self._codes[key] = HuffmanCode(lengths)
            if _covers(code, symbols):
                inc_counter("huffman.codebook_reused")
                return code
        inc_counter("huffman.codebook_rebuilt")
        return HuffmanCode.from_symbols(symbols)


def active_cache() -> CodebookCache | None:
    """The cache activated for the current context, if any."""
    return _ACTIVE.get()


@contextmanager
def activate(cache: CodebookCache):
    """Activate ``cache`` for the calling context (one compress job)."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)
