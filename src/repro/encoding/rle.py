"""Bit-plane and small-alphabet run-length helpers.

Used for mask bitmaps and classification maps: both are spatial fields with
long homogeneous runs, where run-length + varint + LZ gives near-entropy
sizes without a Huffman table.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
)

__all__ = ["pack_bitmap", "unpack_bitmap", "encode_runs", "decode_runs"]


def pack_bitmap(bits: np.ndarray) -> bytes:
    """Compress a boolean array: run-length encode, varint, then LZ."""
    flat = np.asarray(bits).astype(bool).ravel()
    payload = bytearray()
    encode_uvarint(flat.size, payload)
    if flat.size == 0:
        return lz_compress(bytes(payload))
    first = int(flat[0])
    payload.append(first)
    # Boundaries between runs.
    change = np.flatnonzero(flat[1:] != flat[:-1]) + 1
    edges = np.concatenate(([0], change, [flat.size]))
    runs = np.diff(edges)
    encode_uvarint(len(runs), payload)
    payload += encode_uvarint_array(runs.astype(np.uint64))
    return lz_compress(bytes(payload))


def unpack_bitmap(blob: bytes, shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`; optionally reshape the result."""
    payload = lz_decompress(blob)
    size, pos = decode_uvarint(payload, 0)
    if size == 0:
        out = np.zeros(0, dtype=bool)
    else:
        first = payload[pos]
        pos += 1
        n_runs, pos = decode_uvarint(payload, pos)
        runs, pos = decode_uvarint_array(payload, n_runs, pos)
        if int(runs.sum()) != size:
            raise ValueError("bitmap runs do not sum to declared size")
        values = (np.arange(n_runs) % 2) == (0 if first else 1)
        out = np.repeat(values, runs.astype(np.int64))
    if shape is not None:
        out = out.reshape(shape)
    return out


def encode_runs(values: np.ndarray) -> bytes:
    """Serialize a small-alphabet non-negative int array as (value, run) pairs."""
    flat = np.asarray(values, dtype=np.int64).ravel()
    if (flat < 0).any():
        raise ValueError("encode_runs requires non-negative values")
    payload = bytearray()
    encode_uvarint(flat.size, payload)
    if flat.size:
        change = np.flatnonzero(flat[1:] != flat[:-1]) + 1
        edges = np.concatenate(([0], change, [flat.size]))
        runs = np.diff(edges)
        vals = flat[edges[:-1]]
        encode_uvarint(len(runs), payload)
        payload += encode_uvarint_array(vals.astype(np.uint64))
        payload += encode_uvarint_array(runs.astype(np.uint64))
    return lz_compress(bytes(payload))


def decode_runs(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_runs`."""
    payload = lz_decompress(blob)
    size, pos = decode_uvarint(payload, 0)
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    n_runs, pos = decode_uvarint(payload, pos)
    vals, pos = decode_uvarint_array(payload, n_runs, pos)
    runs, pos = decode_uvarint_array(payload, n_runs, pos)
    if int(runs.sum()) != size:
        raise ValueError("runs do not sum to declared size")
    return np.repeat(vals.astype(np.int64), runs.astype(np.int64))
