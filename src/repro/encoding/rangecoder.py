"""Static range (arithmetic) coder — the fractional-bit entropy stage.

Huffman assigns whole bits per symbol; a range coder reaches the entropy
limit, which matters for SZ-family streams where the zero bin often has
probability far above one half (Huffman floors it at 1 bit, arithmetic
coding charges its true ~0.1 bits). SZ3 ships an arithmetic-coder option
for exactly this regime; this is the equivalent for our stack, exposed as
an alternative backend next to :mod:`repro.encoding.huffman` and compared
against it in the design-ablation benches.

Implementation: a carry-less Subbotin-style integer range coder with a
static model — symbol frequencies are quantized to a 2^14 total, serialized
with the stream, and decoded with cumulative-frequency binary search.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.encoding.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
)

__all__ = ["RangeModel", "rc_encode", "rc_decode"]

_TOTAL_BITS = 14
_TOTAL = 1 << _TOTAL_BITS
_TOP = 1 << 24
_BOTTOM = 1 << 16
_MASK32 = (1 << 32) - 1


class RangeModel:
    """A static symbol model: quantized frequencies + cumulative table."""

    def __init__(self, freqs: np.ndarray) -> None:
        freqs = np.asarray(freqs, dtype=np.int64)
        if freqs.sum() <= 0:
            raise ValueError("model needs at least one observed symbol")
        if (freqs < 0).any():
            raise ValueError("negative frequency")
        # Quantize to _TOTAL while keeping every observed symbol >= 1.
        scaled = freqs * (_TOTAL - np.count_nonzero(freqs)) // max(int(freqs.sum()), 1)
        scaled = np.where(freqs > 0, np.maximum(scaled, 1), 0)
        # Fix the rounding drift on the most frequent symbol.
        drift = _TOTAL - int(scaled.sum())
        scaled[int(freqs.argmax())] += drift
        if scaled[int(freqs.argmax())] <= 0:
            raise ValueError("alphabet too large for the model precision")
        self.freq = scaled
        self.cum = np.concatenate(([0], np.cumsum(scaled)))

    @property
    def alphabet_size(self) -> int:
        return len(self.freq)

    # ------------------------------------------------------------------ #
    def serialize(self) -> bytes:
        out = bytearray()
        used = np.flatnonzero(self.freq)
        encode_uvarint(self.alphabet_size, out)
        encode_uvarint(len(used), out)
        out += encode_uvarint_array(np.diff(used, prepend=0).astype(np.uint64))
        out += encode_uvarint_array(self.freq[used].astype(np.uint64))
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, pos: int = 0) -> tuple["RangeModel", int]:
        alphabet, pos = decode_uvarint(data, pos)
        n_used, pos = decode_uvarint(data, pos)
        deltas, pos = decode_uvarint_array(data, n_used, pos)
        vals, pos = decode_uvarint_array(data, n_used, pos)
        freq = np.zeros(alphabet, dtype=np.int64)
        freq[np.cumsum(deltas.astype(np.int64))] = vals.astype(np.int64)
        model = cls.__new__(cls)
        model.freq = freq
        model.cum = np.concatenate(([0], np.cumsum(freq)))
        if model.cum[-1] != _TOTAL:
            raise ValueError("corrupt range-coder model")
        return model, pos


def rc_encode(symbols: np.ndarray, model: RangeModel) -> bytes:
    """Range-encode ``symbols`` under a static model."""
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size and (symbols.min() < 0 or symbols.max() >= model.alphabet_size):
        raise ValueError("symbol out of the model's alphabet")
    freq = model.freq.tolist()
    cum = model.cum.tolist()
    low = 0
    rng = _MASK32
    out = bytearray()
    for s in symbols.tolist():
        f = freq[s]
        if f == 0:
            raise ValueError(f"symbol {s} has zero model frequency")
        rng >>= _TOTAL_BITS
        low = (low + cum[s] * rng) & _MASK32
        rng *= f
        # renormalize: emit top bytes while the range is small or carries
        while (low ^ (low + rng)) < _TOP or (rng < _BOTTOM and ((rng := -low & (_BOTTOM - 1)) or True)):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK32
            rng = (rng << 8) & _MASK32
    for _ in range(4):
        out.append((low >> 24) & 0xFF)
        low = (low << 8) & _MASK32
    return bytes(out)


def rc_decode(data: bytes, model: RangeModel, n_symbols: int) -> np.ndarray:
    """Inverse of :func:`rc_encode` (requires the same model)."""
    freq = model.freq.tolist()
    cum = model.cum.tolist()
    buf = bytes(data) + b"\x00\x00\x00\x00"
    pos = 0
    low = 0
    rng = _MASK32
    code = 0
    for _ in range(4):
        code = ((code << 8) | buf[pos]) & _MASK32
        pos += 1
    out = np.empty(n_symbols, dtype=np.int64)
    for i in range(n_symbols):
        rng >>= _TOTAL_BITS
        value = ((code - low) & _MASK32) // rng
        if value >= _TOTAL:
            raise ValueError("corrupt range-coded stream")
        s = bisect_right(cum, value) - 1
        out[i] = s
        low = (low + cum[s] * rng) & _MASK32
        rng *= freq[s]
        while (low ^ (low + rng)) < _TOP or (rng < _BOTTOM and ((rng := -low & (_BOTTOM - 1)) or True)):
            code = ((code << 8) | buf[pos]) & _MASK32
            pos += 1
            low = (low << 8) & _MASK32
            rng = (rng << 8) & _MASK32
    return out
