"""Greedy LZ77 — the from-scratch stand-in for SZ3's Zstd stage.

The SZ3 pipeline (and therefore CliZ's) runs a general-purpose LZ coder over
the Huffman output to squeeze residual redundancy (long zero runs, repeated
code patterns). Any LZ-family coder fills that role; this one uses:

* an exact nearest-previous-occurrence index over 4-byte shingles, built
  with one stable NumPy argsort (equal shingle values end up adjacent in
  position order, so each position's predecessor is its nearest earlier
  occurrence) — no hash table and no per-byte Python loop,
* greedy chunked-memcmp match extension, window 65535 bytes,
* a byte-oriented token format: control byte ``0xxxxxxx`` = literal run of
  ``x+1`` bytes (1..128) follows; ``1xxxxxxx`` = match of length ``x+4``
  (4..131) with a 2-byte little-endian offset; longer matches emit a
  batched run of repeated match tokens in one ``bytes`` multiply.

The compress loop iterates once per emitted match (jumping over literal
stretches with ``bisect``), not once per input byte. ``compress`` falls back
to a stored block when expansion would occur, so the output is never more
than ``len(data) + 6`` bytes.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.encoding.varint import decode_uvarint, encode_uvarint

__all__ = ["lz_compress", "lz_decompress"]

_WINDOW = 65535
_MIN_MATCH = 4
_MAX_MATCH = 131  # per token; longer matches chain tokens
_MAGIC_COMPRESSED = 1
_MAGIC_STORED = 0


def _prev_occurrence(data: bytes) -> np.ndarray:
    """``prev[i]`` = nearest ``j < i`` with the same 4-byte shingle, else -1."""
    a = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    v = a[:-3] | (a[1:-2] << np.uint32(8)) | (a[2:-1] << np.uint32(16)) | (a[3:] << np.uint32(24))
    order = np.argsort(v, kind="stable")
    sv = v[order]
    same = sv[1:] == sv[:-1]
    prev = np.full(v.size, -1, dtype=np.int64)
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _match_len(data: bytes, cand: int, i: int, maxl: int) -> int:
    """Common-prefix length of ``data[cand:]`` vs ``data[i:]``, in ``[4, maxl]``.

    Compares in doubling chunks via C-level ``bytes`` equality; overlapping
    sources (``cand + length > i``) are fine because both sides index the
    original buffer.
    """
    length = _MIN_MATCH
    chunk = 32
    while length < maxl:
        step = min(chunk, maxl - length)
        a = data[cand + length : cand + length + step]
        b = data[i + length : i + length + step]
        if a == b:
            length += step
            chunk = min(chunk * 2, 4096)
        else:
            k = 0
            while a[k] == b[k]:
                k += 1
            return length + k
    return maxl


def lz_compress(data: bytes) -> bytes:
    """Compress ``data``; always decompressible by :func:`lz_decompress`."""
    data = bytes(data)
    n = len(data)
    header = bytearray()
    if n < 16:
        header.append(_MAGIC_STORED)
        encode_uvarint(n, header)
        return bytes(header) + data
    tokens = bytearray()
    prev = _prev_occurrence(data)
    in_window = (prev >= 0) & ((np.arange(prev.size, dtype=np.int64) - prev) <= _WINDOW)
    cand_pos = np.flatnonzero(in_window)
    cand_list = cand_pos.tolist()
    cand_prev = prev[cand_pos].tolist()
    nc = len(cand_list)
    lit_start = 0
    i = 0
    ci = 0

    def flush_literals(upto: int) -> None:
        s = lit_start
        while s < upto:
            run = min(128, upto - s)
            tokens.append(run - 1)
            tokens.extend(data[s : s + run])
            s += run

    while True:
        # Jump straight to the next position with a usable candidate; the
        # bytes skipped over are literals by construction.
        ci = bisect_left(cand_list, i, ci)
        if ci >= nc:
            break
        i = cand_list[ci]
        cand = cand_prev[ci]
        length = _match_len(data, cand, i, n - i)
        flush_literals(i)
        off = i - cand
        q, r = divmod(length, _MAX_MATCH)
        if q:
            tokens += bytes((0x80 | (_MAX_MATCH - _MIN_MATCH), off & 0xFF, off >> 8)) * q
        if r >= _MIN_MATCH:
            tokens.append(0x80 | (r - _MIN_MATCH))
            tokens.append(off & 0xFF)
            tokens.append(off >> 8)
        else:
            # A sub-minimum tail stays unconsumed; the next round matches or
            # flushes it as literals.
            length -= r
        i += length
        lit_start = i
    flush_literals(n)

    if len(tokens) + 10 >= n:
        header.append(_MAGIC_STORED)
        encode_uvarint(n, header)
        return bytes(header) + data
    header.append(_MAGIC_COMPRESSED)
    encode_uvarint(n, header)
    return bytes(header) + bytes(tokens)


def lz_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`lz_compress`."""
    if not blob:
        raise EOFError("empty LZ stream")
    mode = blob[0]
    n, pos = decode_uvarint(blob, 1)
    if mode == _MAGIC_STORED:
        out = blob[pos : pos + n]
        if len(out) != n:
            raise EOFError("truncated stored LZ block")
        return bytes(out)
    if mode != _MAGIC_COMPRESSED:
        raise ValueError(f"bad LZ block mode {mode}")
    out = bytearray()
    data = blob
    end = len(blob)
    while len(out) < n:
        if pos >= end:
            raise EOFError("truncated LZ stream")
        ctrl = data[pos]
        pos += 1
        if ctrl & 0x80:
            length = (ctrl & 0x7F) + _MIN_MATCH
            if pos + 2 > end:
                raise EOFError("truncated LZ match token")
            off = data[pos] | (data[pos + 1] << 8)
            pos += 2
            if off == 0 or off > len(out):
                raise ValueError("invalid LZ match offset")
            start = len(out) - off
            if off >= length:
                out += out[start : start + length]
            else:  # overlapping match: copy byte-wise semantics
                for k in range(length):
                    out.append(out[start + k])
        else:
            run = ctrl + 1
            if pos + run > end:
                raise EOFError("truncated LZ literal run")
            out += data[pos : pos + run]
            pos += run
    if len(out) != n:
        raise ValueError("LZ stream decoded to wrong length")
    return bytes(out)
