"""Greedy hash-chain LZ77 — the from-scratch stand-in for SZ3's Zstd stage.

The SZ3 pipeline (and therefore CliZ's) runs a general-purpose LZ coder over
the Huffman output to squeeze residual redundancy (long zero runs, repeated
code patterns). Any LZ-family coder fills that role; this one uses:

* a single-slot 16-bit hash table over 4-byte shingles (precomputed with one
  vectorized NumPy pass, so the Python match loop does no hashing),
* greedy match extension, window 65535 bytes, match length 4..259,
* a byte-oriented token format: control byte ``0xxxxxxx`` = literal run of
  ``x+1`` bytes (1..128) follows; ``1xxxxxxx`` = match of length ``x+4``
  (4..131) with a 2-byte little-endian offset; lengths above 131 emit
  repeated match tokens.

``compress`` falls back to a stored block when expansion would occur, so the
output is never more than ``len(data) + 6`` bytes.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.varint import decode_uvarint, encode_uvarint

__all__ = ["lz_compress", "lz_decompress"]

_WINDOW = 65535
_MIN_MATCH = 4
_MAX_MATCH = 131  # per token; longer matches chain tokens
_MAGIC_COMPRESSED = 1
_MAGIC_STORED = 0


def _hashes(data: bytes) -> list[int]:
    """16-bit multiplicative hashes of every 4-byte shingle (vectorized)."""
    a = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    v = a[:-3] | (a[1:-2] << np.uint32(8)) | (a[2:-1] << np.uint32(16)) | (a[3:] << np.uint32(24))
    h = (v * np.uint32(2654435761)) >> np.uint32(16)
    return h.tolist()


def lz_compress(data: bytes) -> bytes:
    """Compress ``data``; always decompressible by :func:`lz_decompress`."""
    n = len(data)
    header = bytearray()
    if n < 16:
        header.append(_MAGIC_STORED)
        encode_uvarint(n, header)
        return bytes(header) + data
    tokens = bytearray()
    hashes = _hashes(data)
    table = [-1] * 65536
    i = 0
    lit_start = 0
    limit = n - _MIN_MATCH + 1

    def flush_literals(upto: int) -> None:
        s = lit_start
        while s < upto:
            run = min(128, upto - s)
            tokens.append(run - 1)
            tokens.extend(data[s : s + run])
            s += run

    while i < limit:
        h = hashes[i]
        cand = table[h]
        table[h] = i
        if cand >= 0 and i - cand <= _WINDOW and data[cand : cand + 4] == data[i : i + 4]:
            length = 4
            maxl = min(n - i, _MAX_MATCH)
            while length < maxl and data[cand + length] == data[i + length]:
                length += 1
            flush_literals(i)
            tokens.append(0x80 | (length - _MIN_MATCH))
            off = i - cand
            tokens.append(off & 0xFF)
            tokens.append(off >> 8)
            # Seed the table at a couple of positions inside the match so
            # later occurrences of its interior still find candidates.
            if i + 1 < limit:
                table[hashes[i + 1]] = i + 1
            mid = i + length // 2
            if mid < limit:
                table[hashes[mid]] = mid
            i += length
            lit_start = i
        else:
            i += 1
    flush_literals(n)
    lit_start = n

    if len(tokens) + 10 >= n:
        header.append(_MAGIC_STORED)
        encode_uvarint(n, header)
        return bytes(header) + data
    header.append(_MAGIC_COMPRESSED)
    encode_uvarint(n, header)
    return bytes(header) + bytes(tokens)


def lz_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`lz_compress`."""
    if not blob:
        raise EOFError("empty LZ stream")
    mode = blob[0]
    n, pos = decode_uvarint(blob, 1)
    if mode == _MAGIC_STORED:
        out = blob[pos : pos + n]
        if len(out) != n:
            raise EOFError("truncated stored LZ block")
        return bytes(out)
    if mode != _MAGIC_COMPRESSED:
        raise ValueError(f"bad LZ block mode {mode}")
    out = bytearray()
    data = blob
    end = len(blob)
    while len(out) < n:
        if pos >= end:
            raise EOFError("truncated LZ stream")
        ctrl = data[pos]
        pos += 1
        if ctrl & 0x80:
            length = (ctrl & 0x7F) + _MIN_MATCH
            if pos + 2 > end:
                raise EOFError("truncated LZ match token")
            off = data[pos] | (data[pos + 1] << 8)
            pos += 2
            if off == 0 or off > len(out):
                raise ValueError("invalid LZ match offset")
            start = len(out) - off
            if off >= length:
                out += out[start : start + length]
            else:  # overlapping match: copy byte-wise semantics
                for k in range(length):
                    out.append(out[start + k])
        else:
            run = ctrl + 1
            if pos + run > end:
                raise EOFError("truncated LZ literal run")
            out += data[pos : pos + run]
            pos += run
    if len(out) != n:
        raise ValueError("LZ stream decoded to wrong length")
    return bytes(out)
