"""Lossless coding substrates: bit I/O, Huffman, multi-Huffman, LZ77, RLE, container."""

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.container import Container
from repro.encoding.huffman import HuffmanCode
from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.multihuffman import decode_grouped, encode_grouped
from repro.encoding.rangecoder import RangeModel, rc_decode, rc_encode
from repro.encoding.rle import decode_runs, encode_runs, pack_bitmap, unpack_bitmap

__all__ = [
    "BitReader",
    "BitWriter",
    "Container",
    "HuffmanCode",
    "lz_compress",
    "lz_decompress",
    "encode_grouped",
    "decode_grouped",
    "RangeModel",
    "rc_encode",
    "rc_decode",
    "pack_bitmap",
    "unpack_bitmap",
    "encode_runs",
    "decode_runs",
]
