"""LEB128 variable-length integers and zigzag mapping.

Used by every serialized structure in the container format: Huffman code
tables, LZ token streams, classification maps, and section headers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_uvarint_array",
    "decode_uvarint_array",
    "zigzag_encode",
    "zigzag_decode",
]


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` (non-negative) to ``out`` as LEB128."""
    if value < 0:
        raise ValueError("uvarint requires a non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one LEB128 integer starting at ``pos``; return (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise EOFError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("uvarint too long")


def encode_uvarint_array(values: np.ndarray) -> bytes:
    """Serialize an array of non-negative ints as concatenated LEB128.

    Vectorized: computes each value's byte count, then scatters the 7-bit
    groups with continuation flags in one pass.
    """
    vals = np.asarray(values, dtype=np.uint64).ravel()
    if vals.size == 0:
        return b""
    # Number of LEB128 bytes for each value: ceil(bit_length / 7), min 1.
    nbytes = np.ones(vals.shape, dtype=np.int64)
    tmp = vals >> np.uint64(7)
    while tmp.any():
        nbytes += (tmp != 0)
        tmp >>= np.uint64(7)
    total = int(nbytes.sum())
    out = np.empty(total, dtype=np.uint8)
    # Starting offset of each value's encoding.
    starts = np.concatenate(([0], np.cumsum(nbytes)[:-1]))
    maxb = int(nbytes.max())
    shifted = vals.copy()
    for k in range(maxb):
        sel = nbytes > k
        idx = starts[sel] + k
        more = nbytes[sel] > (k + 1)
        out[idx] = ((shifted[sel] & np.uint64(0x7F)).astype(np.uint8)) | (more.astype(np.uint8) << 7)
        shifted[sel] >>= np.uint64(7)
    return out.tobytes()


def decode_uvarint_array(data: bytes, n: int, pos: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``n`` LEB128 integers; return (uint64 array, new_pos).

    Vectorized: locates value boundaries from the continuation bits, then
    accumulates 7-bit groups by in-group position.
    """
    if n == 0:
        return np.zeros(0, dtype=np.uint64), pos
    buf = np.frombuffer(data, dtype=np.uint8)[pos:]
    is_last = (buf & 0x80) == 0
    ends = np.flatnonzero(is_last)
    if len(ends) < n:
        raise EOFError("truncated uvarint array")
    ends = ends[:n]
    starts = np.concatenate(([0], ends[:-1] + 1))
    lengths = ends - starts + 1
    if int(lengths.max()) > 10:
        raise ValueError("uvarint too long")
    vals = np.zeros(n, dtype=np.uint64)
    maxb = int(lengths.max())
    for k in range(maxb):
        sel = lengths > k
        group = buf[starts[sel] + k].astype(np.uint64) & np.uint64(0x7F)
        vals[sel] |= group << np.uint64(7 * k)
    return vals, pos + int(ends[-1]) + 1


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed ints to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(np.int64)
