"""MSB-first bit-level I/O.

Every entropy coder in this repository (Huffman, ZFP's embedded coder,
SPERR's set-partitioning coder) serializes through these two classes.

Design notes (per the HPC-Python guides: vectorize the hot paths, keep
scalar paths allocation-free):

* ``BitWriter`` buffers scalar writes in plain Python lists and turns bulk
  variable-width writes (the Huffman encode path) into a repeat-based NumPy
  bit expansion, so encoding a million codewords costs a handful of
  array operations instead of a million Python iterations.
* ``BitReader`` unpacks the buffer to a byte-per-bit representation once and
  serves scalar reads from a plain ``bytes`` object (O(1) C-level indexing,
  no per-read NumPy dispatch) and bulk fixed-width reads from the NumPy bit
  array.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader"]

_MAX_WRITE_BITS = 64


class BitWriter:
    """Append-only MSB-first bit stream writer.

    Bits are flushed into bytes only at :meth:`getvalue` time; the final byte
    is zero-padded on the right.
    """

    def __init__(self) -> None:
        # Finished boolean segments (one uint8 0/1 array per bulk write).
        self._segments: list[np.ndarray] = []
        # Pending scalar writes (value, nbits) awaiting conversion.
        self._pend_vals: list[int] = []
        self._pend_lens: list[int] = []
        self._nbits = 0

    # ------------------------------------------------------------------ #
    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._nbits

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` least-significant bits of ``value``, MSB first.

        ``value`` must be non-negative and fit in ``nbits`` (<= 64) bits.
        Writing zero bits is a no-op.
        """
        if nbits == 0:
            return
        if nbits < 0 or nbits > _MAX_WRITE_BITS:
            raise ValueError(f"nbits must be in 0..{_MAX_WRITE_BITS}, got {nbits}")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._pend_vals.append(value)
        self._pend_lens.append(nbits)
        self._nbits += nbits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write(1 if bit else 0, 1)

    def write_array(self, values: np.ndarray, nbits: int) -> None:
        """Append each element of ``values`` as a fixed-width field."""
        values = np.asarray(values, dtype=np.uint64)
        lengths = np.full(values.shape, nbits, dtype=np.uint8)
        self.write_varwidth(values, lengths)

    def write_varwidth(self, codes: np.ndarray, lengths: np.ndarray) -> None:
        """Append ``codes[i]`` using ``lengths[i]`` bits each (bulk path).

        This is the Huffman encoder's hot path. Fixed-width batches expand
        into an (n, width) bit matrix and flatten row-major. Variable-width
        batches instead repeat each code ``lengths[i]`` times and shift by
        the distance to its segment end — two ``np.repeat`` calls and no
        per-row masking, which beats the bit-matrix + boolean-extract form
        by ~10x on skewed Huffman length distributions.
        """
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        lengths = np.asarray(lengths, dtype=np.uint8).ravel()
        if codes.shape != lengths.shape:
            raise ValueError("codes and lengths must have the same shape")
        if codes.size == 0:
            return
        self._flush_pending()
        max_len = int(lengths.max())
        if max_len == 0:
            return
        if max_len > _MAX_WRITE_BITS:
            raise ValueError(f"code length {max_len} exceeds {_MAX_WRITE_BITS}")
        if int(lengths.min()) == max_len:
            shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
            bits = ((codes[:, None] >> shifts[None, :]) & np.uint64(1))
            self._segments.append(bits.astype(np.uint8).ravel())
            self._nbits += codes.size * max_len
            return
        ends = np.cumsum(lengths.astype(np.int64))
        total = int(ends[-1])
        # Output bit t belongs to code i with starts[i] <= t < ends[i] and is
        # bit (ends[i] - 1 - t) of that code, counting from the LSB.
        shifts = (np.repeat(ends, lengths) - 1 - np.arange(total, dtype=np.int64)).astype(np.uint64)
        bits_v = (np.repeat(codes, lengths) >> shifts) & np.uint64(1)
        self._segments.append(bits_v.astype(np.uint8))
        self._nbits += total

    def write_bool_array(self, bits: np.ndarray) -> None:
        """Append a raw array of bits (0/1 values, one bit each)."""
        arr = np.asarray(bits).astype(np.uint8).ravel()
        if arr.size == 0:
            return
        self._flush_pending()
        self._segments.append(arr)
        self._nbits += arr.size

    # ------------------------------------------------------------------ #
    def _flush_pending(self) -> None:
        if not self._pend_vals:
            return
        vals = np.array(self._pend_vals, dtype=np.uint64)
        lens = np.array(self._pend_lens, dtype=np.uint8)
        self._pend_vals = []
        self._pend_lens = []
        # write_varwidth counts bits again, so subtract the pending count.
        self._nbits -= int(lens.sum(dtype=np.int64))
        self.write_varwidth(vals, lens)

    def getvalue(self) -> bytes:
        """Pack all written bits into bytes (right-padded with zero bits)."""
        self._flush_pending()
        if not self._segments:
            return b""
        allbits = np.concatenate(self._segments) if len(self._segments) > 1 else self._segments[0]
        self._segments = [allbits]
        return np.packbits(allbits).tobytes()


class BitReader:
    """MSB-first bit stream reader over a ``bytes`` buffer."""

    def __init__(self, data: bytes, *, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        self._bits = np.unpackbits(np.frombuffer(self._data, dtype=np.uint8))
        # bytes of 0x00/0x01 for O(1) scalar access without NumPy dispatch.
        self._b01 = self._bits.tobytes()
        self._pos = 0
        self._limit = len(self._bits) if bit_length is None else int(bit_length)
        if self._limit > len(self._bits):
            raise ValueError("bit_length exceeds available data")

    # ------------------------------------------------------------------ #
    @property
    def bit_position(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return self._limit - self._pos

    def seek(self, bit_position: int) -> None:
        if bit_position < 0 or bit_position > self._limit:
            raise ValueError("seek out of range")
        self._pos = bit_position

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits and return them as a non-negative int."""
        if nbits == 0:
            return 0
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        end = self._pos + nbits
        if end > self._limit:
            raise EOFError(f"attempt to read past end of bit stream ({end} > {self._limit})")
        acc = 0
        b = self._b01
        for i in range(self._pos, end):
            acc = (acc << 1) | b[i]
        self._pos = end
        return acc

    def read_bit(self) -> int:
        """Read a single bit."""
        if self._pos >= self._limit:
            raise EOFError("attempt to read past end of bit stream")
        bit = self._b01[self._pos]
        self._pos += 1
        return bit

    def read_array(self, n: int, nbits: int) -> np.ndarray:
        """Read ``n`` fixed-width fields of ``nbits`` bits each (vectorized)."""
        if n < 0 or nbits < 0 or nbits > _MAX_WRITE_BITS:
            raise ValueError("invalid n/nbits")
        if n == 0 or nbits == 0:
            self._check(n * nbits)
            return np.zeros(n, dtype=np.uint64)
        total = n * nbits
        self._check(total)
        chunk = self._bits[self._pos : self._pos + total].reshape(n, nbits).astype(np.uint64)
        weights = (np.uint64(1) << np.arange(nbits - 1, -1, -1, dtype=np.uint64))
        self._pos += total
        return chunk @ weights

    def read_bool_array(self, n: int) -> np.ndarray:
        """Read ``n`` raw bits as a uint8 0/1 array (vectorized)."""
        self._check(n)
        out = self._bits[self._pos : self._pos + n].copy()
        self._pos += n
        return out

    def _check(self, nbits: int) -> None:
        if self._pos + nbits > self._limit:
            raise EOFError("attempt to read past end of bit stream")
