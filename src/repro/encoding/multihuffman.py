"""Multi-Huffman encoding — CliZ's quantization-bin group coder (§VI-E).

CliZ classifies quantization bins into groups (concentrated vs dispersed
positions) and encodes each group with its own Huffman tree. Rather than
interleaving codewords from different trees (which would force a per-symbol
table switch in the decoder), symbols are stably partitioned by group, each
partition is coded contiguously with its own canonical table, and the
decoder scatters them back using the same group map — bit-identical
information content, vectorized scatter/gather.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitWriter
from repro.encoding.codebook import active_cache
from repro.encoding.huffman import HuffmanCode
from repro.encoding.varint import decode_uvarint, encode_uvarint
from repro.obs import inc_counter, observe, span as profile_stage

__all__ = ["encode_grouped", "decode_grouped", "grouped_cost_bits", "single_cost_bits"]


def encode_grouped(symbols: np.ndarray, groups: np.ndarray, n_groups: int) -> bytes:
    """Encode ``symbols`` with one Huffman tree per group.

    Parameters
    ----------
    symbols:
        Non-negative symbol array.
    groups:
        Group index per symbol (same length, values in ``0..n_groups-1``).
    n_groups:
        Number of groups; empty groups are allowed.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    groups = np.asarray(groups, dtype=np.int64).ravel()
    if symbols.shape != groups.shape:
        raise ValueError("symbols and groups must have the same length")
    if symbols.size and (groups.min() < 0 or groups.max() >= n_groups):
        raise ValueError("group indices out of range")
    out = bytearray()
    encode_uvarint(n_groups, out)
    encode_uvarint(symbols.size, out)
    inc_counter("multihuffman.encode.calls")
    observe("multihuffman.n_groups", n_groups, buckets=[1, 2, 4, 8, 16, 32])
    with profile_stage("multihuffman.encode", nbytes=symbols.size * 8):
        blob = bytes(_encode_groups(symbols, groups, n_groups, out))
    if symbols.size:
        observe("multihuffman.bits_per_symbol", len(blob) * 8.0 / symbols.size)
    return blob


def _encode_groups(symbols: np.ndarray, groups: np.ndarray, n_groups: int,
                   out: bytearray) -> bytearray:
    cache = active_cache()
    for g in range(n_groups):
        part = symbols[groups == g]
        encode_uvarint(part.size, out)
        if part.size == 0:
            continue
        if cache is not None:
            code = cache.code_for(f"group{g}", part)
        else:
            code = HuffmanCode.from_symbols(part)
        table = code.serialize()
        encode_uvarint(len(table), out)
        out += table
        writer = BitWriter()
        code.encode(part, writer)
        payload = writer.getvalue()
        encode_uvarint(writer.bit_length, out)
        out += payload
    return out


def decode_grouped(blob: bytes, groups: np.ndarray, pos: int = 0) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_grouped`; requires the same group map.

    Returns ``(symbols, new_pos)``.
    """
    groups = np.asarray(groups, dtype=np.int64).ravel()
    n_groups, pos = decode_uvarint(blob, pos)
    total, pos = decode_uvarint(blob, pos)
    if total != groups.size:
        raise ValueError(f"group map length {groups.size} does not match stream ({total})")
    out = np.zeros(total, dtype=np.int64)
    with profile_stage("multihuffman.decode", nbytes=len(blob) - pos):
        for g in range(n_groups):
            n_g, pos = decode_uvarint(blob, pos)
            if n_g == 0:
                continue
            sel = groups == g
            if int(sel.sum()) != n_g:
                raise ValueError("group map inconsistent with stream counts")
            table_len, pos = decode_uvarint(blob, pos)
            code, _ = HuffmanCode.deserialize(blob[pos : pos + table_len])
            pos += table_len
            bit_len, pos = decode_uvarint(blob, pos)
            n_bytes = (bit_len + 7) // 8
            part, _ = code.decode(blob[pos : pos + n_bytes], n_g)
            pos += n_bytes
            out[sel] = part
    return out, pos


def _entropy_bits(counts: np.ndarray) -> float:
    counts = counts[counts > 0].astype(np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(-(counts * np.log2(p)).sum())


def single_cost_bits(symbols: np.ndarray) -> float:
    """Entropy-model estimate of single-tree encoded size (payload only)."""
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size == 0:
        return 0.0
    return _entropy_bits(np.bincount(symbols))


def grouped_cost_bits(symbols: np.ndarray, groups: np.ndarray, n_groups: int,
                      map_bits_per_entry: float = 0.0, n_map_entries: int = 0) -> float:
    """Entropy-model estimate of multi-tree encoded size.

    Includes an optional charge for the classification map
    (``n_map_entries * map_bits_per_entry``), which is how the auto-tuner
    decides whether bin classification pays for itself (§VI-E notes each
    position costs about ``log2((2j+1)(k+1))`` bits).
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    groups = np.asarray(groups, dtype=np.int64).ravel()
    bits = 0.0
    for g in range(n_groups):
        part = symbols[groups == g]
        if part.size:
            bits += _entropy_bits(np.bincount(part))
    return bits + map_bits_per_entry * n_map_entries
