"""Versioned binary container for compressed streams.

Every compressor in this repository serializes to the same on-disk layout::

    magic 'RPRZ' | version u8 | codec name | JSON header | named sections
    | CRC32 of everything above

The JSON header carries small structured metadata (shape, dtype, error
bound, pipeline configuration); sections carry the bulk byte streams
(Huffman payloads, tables, masks, unpredictable values). Decompressors
dispatch on the codec name, so ``repro.decompress(blob)`` can route a blob
produced by any compressor back to the right implementation.

Version 2 (current) additionally stores a CRC32 *per section*, written
right after each payload. The trailing global CRC32 still lets
:meth:`Container.from_bytes` reject bit rot / truncation outright, while
the per-section checksums let **salvage mode**
(``Container.from_bytes(blob, salvage=True)``) isolate exactly which
sections are damaged and hand the intact ones to the decoder — the basis
for :func:`repro.parallel.decompress_chunked`'s NaN-filled partial reads
and corruption-tolerant RCDF variable access. Version-1 blobs (no section
CRCs) are still read transparently.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro.encoding.varint import decode_uvarint, encode_uvarint

__all__ = [
    "Container",
    "CorruptStreamError",
    "SalvageReport",
    "SectionFailure",
    "DECODE_ERRORS",
    "MAGIC",
    "VERSION",
]

MAGIC = b"RPRZ"
VERSION = 2
_READABLE_VERSIONS = (1, 2)

#: Exceptions a decoder is allowed to raise on corrupt input. Anything
#: outside this set escaping a decode is a bug (see the corruption fuzz
#: suite in ``tests/test_corruption_fuzz.py``).
DECODE_ERRORS = (ValueError, EOFError, KeyError, IndexError, OverflowError)


class CorruptStreamError(ValueError):
    """A compressed stream failed a structural or checksum validation.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers (and tests) keep working.
    """


@dataclass
class SectionFailure:
    """One damaged section discovered during a salvage parse/decode."""

    name: str
    stage: str  # 'crc' | 'missing' | 'truncated' | 'decode'
    error: str

    def to_dict(self) -> dict:
        return {"name": self.name, "stage": self.stage, "error": self.error}


@dataclass
class SalvageReport:
    """Machine-readable outcome of a corruption-tolerant read."""

    codec: str = ""
    total: int = 0  # sections/chunks/variables expected
    failures: list[SectionFailure] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing had to be salvaged."""
        return not self.failures and not self.notes

    @property
    def failed_names(self) -> list[str]:
        return [f.name for f in self.failures]

    def add(self, name: str, stage: str, error: str) -> None:
        self.failures.append(SectionFailure(name, stage, str(error)))

    def to_dict(self) -> dict:
        return {
            "codec": self.codec,
            "total": self.total,
            "recovered": self.total - len(self.failures),
            "failures": [f.to_dict() for f in self.failures],
            "notes": list(self.notes),
            "ok": self.ok,
        }

    def summary(self) -> str:
        if self.ok:
            return f"salvage: all {self.total} sections intact"
        failed = ", ".join(f"{f.name} ({f.stage})" for f in self.failures)
        return (f"salvage: recovered {self.total - len(self.failures)}"
                f"/{self.total} sections; failed: {failed}")


class _Reader:
    """Bounds-checked cursor over a byte buffer.

    Every read raises :class:`EOFError` instead of ``IndexError`` when the
    buffer runs out, so corrupt input always fails from the documented
    exception set — salvage mode additionally relies on this to stop
    cleanly at the damage point.
    """

    def __init__(self, buf: bytes, pos: int = 0) -> None:
        self.buf = buf
        self.pos = pos

    def u8(self) -> int:
        if self.pos >= len(self.buf):
            raise EOFError("container truncated (expected byte)")
        value = self.buf[self.pos]
        self.pos += 1
        return value

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self.pos + n > len(self.buf):
            raise EOFError(f"container truncated (expected {n} bytes of {what})")
        chunk = self.buf[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def uvarint(self) -> int:
        value, self.pos = decode_uvarint(self.buf, self.pos)
        return value


class Container:
    """A codec-tagged bundle of a JSON header plus named binary sections."""

    def __init__(self, codec: str, header: dict | None = None) -> None:
        if not codec or len(codec) > 32:
            raise ValueError("codec name must be 1..32 characters")
        self.codec = codec
        self.header: dict = dict(header or {})
        self.version = VERSION  # version read from the wire (VERSION when new)
        self.salvaged = False  # parsed in salvage mode past damage?
        self._sections: dict[str, bytes] = {}
        self._corrupt: dict[str, str] = {}  # name -> reason (salvage mode)

    # ------------------------------------------------------------------ #
    def add_section(self, name: str, payload: bytes) -> None:
        """Attach a named byte payload (names must be unique)."""
        if name in self._sections:
            raise ValueError(f"duplicate section {name!r}")
        if len(name) > 64:
            raise ValueError("section name too long")
        self._sections[name] = bytes(payload)

    def section(self, name: str) -> bytes:
        """Fetch a named payload.

        Raises :class:`KeyError` if absent and :class:`CorruptStreamError`
        if the section was present but failed its checksum during a
        salvage parse.
        """
        if name in self._corrupt:
            raise CorruptStreamError(
                f"section {name!r} is corrupt: {self._corrupt[name]}")
        return self._sections[name]

    def has_section(self, name: str) -> bool:
        return name in self._sections

    @property
    def section_names(self) -> list[str]:
        return list(self._sections)

    @property
    def corrupt_sections(self) -> dict[str, str]:
        """Sections that failed their CRC in a salvage parse (name -> why)."""
        return dict(self._corrupt)

    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        out.append(VERSION)
        codec_b = self.codec.encode("ascii")
        out.append(len(codec_b))
        out += codec_b
        header_b = json.dumps(self.header, separators=(",", ":"), sort_keys=True).encode("utf-8")
        encode_uvarint(len(header_b), out)
        out += header_b
        encode_uvarint(len(self._sections), out)
        for name, payload in self._sections.items():
            name_b = name.encode("ascii")
            out.append(len(name_b))
            out += name_b
            encode_uvarint(len(payload), out)
            out += payload
            out += zlib.crc32(payload).to_bytes(4, "little")  # v2: per-section
        out += zlib.crc32(out).to_bytes(4, "little")
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, *, salvage: bool = False) -> "Container":
        """Parse a container.

        In strict mode (default) any checksum mismatch or structural damage
        raises (:class:`CorruptStreamError` / :class:`EOFError`). With
        ``salvage=True`` the parse keeps going past damage: sections whose
        per-section CRC fails (v2) are retained as *corrupt* (listed in
        :attr:`corrupt_sections`; :meth:`section` raises for them), and a
        truncated tail simply ends the section list early. The header must
        still parse — without it nothing downstream can interpret the
        sections.
        """
        blob = bytes(blob)
        if blob[:4] != MAGIC:
            raise CorruptStreamError("not a repro container (bad magic)")
        if len(blob) < 9:
            raise EOFError("container too short")
        body, crc = blob[:-4], int.from_bytes(blob[-4:], "little")
        crc_ok = zlib.crc32(body) == crc
        if not crc_ok and not salvage:
            raise CorruptStreamError("container checksum mismatch (corrupt or truncated)")
        # In salvage mode a truncated blob's "global CRC" is 4 arbitrary
        # payload bytes — parse the full buffer, not buffer-minus-4.
        rd = _Reader(body if crc_ok else blob, 5)
        version = blob[4]
        if version not in _READABLE_VERSIONS:
            raise CorruptStreamError(f"unsupported container version {version}")
        try:
            codec_len = rd.u8()
            codec = rd.take(codec_len, "codec name").decode("ascii")
            header_len = rd.uvarint()
            header = json.loads(rd.take(header_len, "header").decode("utf-8"))
            if not isinstance(header, dict):
                raise ValueError("container header is not a JSON object")
            obj = cls(codec, header)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptStreamError(f"container header unreadable: {exc}") from None
        obj.version = version
        obj.salvaged = salvage and not crc_ok
        try:
            n_sections = rd.uvarint()
            if n_sections > len(rd.buf):  # cheap sanity bound before looping
                raise CorruptStreamError(f"implausible section count {n_sections}")
            for _ in range(n_sections):
                name_len = rd.u8()
                name = rd.take(name_len, "section name").decode("ascii", errors="replace")
                payload_len = rd.uvarint()
                payload = rd.take(payload_len, f"section {name!r}")
                crc_bad = False
                if version >= 2:
                    stored = int.from_bytes(rd.take(4, "section crc"), "little")
                    crc_bad = zlib.crc32(payload) != stored
                    if crc_bad and not salvage:
                        raise CorruptStreamError(f"section {name!r} checksum mismatch")
                if name in obj._sections:
                    if not salvage:
                        raise CorruptStreamError(f"duplicate section {name!r}")
                    continue  # salvage: keep the first occurrence
                obj._sections[name] = payload
                if crc_bad:
                    obj._corrupt[name] = "section checksum mismatch"
        except EOFError as exc:
            if not salvage:
                raise
            obj.salvaged = True
            obj._corrupt.setdefault("<tail>", f"truncated: {exc}")
        return obj

    @staticmethod
    def peek_codec(blob: bytes) -> str:
        """Return the codec name without parsing the whole container."""
        if blob[:4] != MAGIC:
            raise CorruptStreamError("not a repro container (bad magic)")
        if len(blob) < 6:
            raise EOFError("container too short")
        codec_len = blob[5]
        name = blob[6 : 6 + codec_len]
        if len(name) != codec_len:
            raise EOFError("container too short for codec name")
        return name.decode("ascii")
