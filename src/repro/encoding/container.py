"""Versioned binary container for compressed streams.

Every compressor in this repository serializes to the same on-disk layout::

    magic 'RPRZ' | version u8 | codec name | JSON header | named sections
    | CRC32 of everything above

The JSON header carries small structured metadata (shape, dtype, error
bound, pipeline configuration); sections carry the bulk byte streams
(Huffman payloads, tables, masks, unpredictable values). Decompressors
dispatch on the codec name, so ``repro.decompress(blob)`` can route a blob
produced by any compressor back to the right implementation. The trailing
CRC32 lets :meth:`Container.from_bytes` reject bit rot / truncation before
any decoder touches the payload.
"""

from __future__ import annotations

import json
import zlib

from repro.encoding.varint import decode_uvarint, encode_uvarint

__all__ = ["Container", "MAGIC", "VERSION"]

MAGIC = b"RPRZ"
VERSION = 1


class Container:
    """A codec-tagged bundle of a JSON header plus named binary sections."""

    def __init__(self, codec: str, header: dict | None = None) -> None:
        if not codec or len(codec) > 32:
            raise ValueError("codec name must be 1..32 characters")
        self.codec = codec
        self.header: dict = dict(header or {})
        self._sections: dict[str, bytes] = {}

    # ------------------------------------------------------------------ #
    def add_section(self, name: str, payload: bytes) -> None:
        """Attach a named byte payload (names must be unique)."""
        if name in self._sections:
            raise ValueError(f"duplicate section {name!r}")
        if len(name) > 64:
            raise ValueError("section name too long")
        self._sections[name] = bytes(payload)

    def section(self, name: str) -> bytes:
        """Fetch a named payload; raises KeyError if absent."""
        return self._sections[name]

    def has_section(self, name: str) -> bool:
        return name in self._sections

    @property
    def section_names(self) -> list[str]:
        return list(self._sections)

    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        out.append(VERSION)
        codec_b = self.codec.encode("ascii")
        out.append(len(codec_b))
        out += codec_b
        header_b = json.dumps(self.header, separators=(",", ":"), sort_keys=True).encode("utf-8")
        encode_uvarint(len(header_b), out)
        out += header_b
        encode_uvarint(len(self._sections), out)
        for name, payload in self._sections.items():
            name_b = name.encode("ascii")
            out.append(len(name_b))
            out += name_b
            encode_uvarint(len(payload), out)
            out += payload
        out += zlib.crc32(out).to_bytes(4, "little")
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Container":
        if blob[:4] != MAGIC:
            raise ValueError("not a repro container (bad magic)")
        if len(blob) < 9:
            raise EOFError("container too short")
        body, crc = blob[:-4], int.from_bytes(blob[-4:], "little")
        if zlib.crc32(body) != crc:
            raise ValueError("container checksum mismatch (corrupt or truncated)")
        blob = body
        version = blob[4]
        if version != VERSION:
            raise ValueError(f"unsupported container version {version}")
        pos = 5
        codec_len = blob[pos]
        pos += 1
        codec = blob[pos : pos + codec_len].decode("ascii")
        pos += codec_len
        header_len, pos = decode_uvarint(blob, pos)
        header = json.loads(blob[pos : pos + header_len].decode("utf-8"))
        pos += header_len
        obj = cls(codec, header)
        n_sections, pos = decode_uvarint(blob, pos)
        for _ in range(n_sections):
            name_len = blob[pos]
            pos += 1
            name = blob[pos : pos + name_len].decode("ascii")
            pos += name_len
            payload_len, pos = decode_uvarint(blob, pos)
            payload = blob[pos : pos + payload_len]
            if len(payload) != payload_len:
                raise EOFError(f"truncated section {name!r}")
            pos += payload_len
            obj.add_section(name, payload)
        return obj

    @staticmethod
    def peek_codec(blob: bytes) -> str:
        """Return the codec name without parsing the whole container."""
        if blob[:4] != MAGIC:
            raise ValueError("not a repro container (bad magic)")
        codec_len = blob[5]
        return blob[6 : 6 + codec_len].decode("ascii")
