"""Canonical, length-limited Huffman coding.

This is the entropy-coding substrate shared by SZ3, QoZ and CliZ (CliZ's
multi-Huffman scheme composes several instances, see
:mod:`repro.encoding.multihuffman`).

Implementation highlights:

* Code lengths come from the classic two-queue Huffman construction and are
  then repaired to a 16-bit ceiling by a Kraft-sum redistribution (increment
  lengths of the least-frequent overlong symbols until the Kraft inequality
  holds, then greedily shorten where slack remains). A 16-bit ceiling lets
  the decoder use a single flat 65536-entry lookup table.
* Encoding is fully vectorized (gather codes/lengths per symbol, one bulk
  repeat-based pack in :class:`~repro.encoding.bitstream.BitWriter`).
* Decoding dispatches between two kernels. Small streams use a tight scalar
  loop (16-bit window per symbol, C-level ``bytes`` indexing, plain-list
  table lookups). Large streams use a batched NumPy kernel
  (:meth:`HuffmanCode.decode_vectorized`): the 16-bit window at *every* bit
  position is decoded in one vectorized pass, then many chains are walked in
  lockstep from evenly spaced anchor bit positions. Chains started at wrong
  positions resynchronize with the true codeword chain after a few symbols
  (the classic Huffman self-synchronization property), so a final stitch
  pass only has to follow the true chain at anchor granularity, copying
  whole spans of already-decoded symbols. Equal-length codebooks skip the
  chains entirely (codeword boundaries are known in closed form), and a
  scalar fallback keeps pathological non-synchronizing streams correct.
  The scalar loop is retained as the differential-testing oracle.
* The serialized form stores only (symbol, length) pairs — sorted symbols as
  zigzag-delta varints plus 4-bit length nibbles — and both sides rebuild the
  canonical codebook deterministically.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.encoding.bitstream import BitWriter
from repro.encoding.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
    zigzag_decode,
    zigzag_encode,
)

__all__ = ["HuffmanCode", "MAX_CODE_LENGTH"]

MAX_CODE_LENGTH = 16

# Vectorized-decode tuning knobs. Streams shorter than _VECTOR_MIN_SYMBOLS
# decode faster in the scalar loop (the NumPy kernel has ~1 ms of fixed
# setup); anchors are spaced ~_ANCHOR_SYMS codewords apart, and every chain
# walks _SLACK_BITS extra bits so a wrongly-started chain has room to
# resynchronize before its span is needed.
_VECTOR_MIN_SYMBOLS = 2048
_ANCHOR_SYMS = 256
_SLACK_BITS = 96
_MAX_STEPS = 640
_EOF_MSG = "corrupt or truncated Huffman stream"


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Unrestricted Huffman code lengths for symbols with freq > 0.

    Returns an int array of the same size as ``freqs`` with 0 for unused
    symbols. Single-symbol alphabets get length 1.
    """
    syms = np.flatnonzero(freqs)
    lengths = np.zeros(len(freqs), dtype=np.int64)
    if len(syms) == 0:
        return lengths
    if len(syms) == 1:
        lengths[syms[0]] = 1
        return lengths
    # Heap of (weight, tiebreak, node). Leaves are ints, internal nodes are
    # [left, right] lists; depths assigned by a final traversal.
    heap: list[tuple[int, int, object]] = [
        (int(freqs[s]), int(s), int(s)) for s in syms
    ]
    heapq.heapify(heap)
    counter = len(freqs)
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, counter, [n1, n2]))
        counter += 1
    # Iterative depth-first traversal to assign depths.
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, list):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = depth
    return lengths


def _limit_lengths(lengths: np.ndarray, freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Repair ``lengths`` so that max(length) <= max_len and Kraft sum <= 1.

    Strategy: clamp overlong codes to ``max_len``; while the Kraft sum
    exceeds 1, lengthen the cheapest (least-frequent) symbol that still has
    room; afterwards shorten the most frequent symbols while slack remains.
    The result is always a valid (decodable) canonical code; optimality is
    sacrificed only in the rare clamped cases.
    """
    lengths = lengths.copy()
    used = lengths > 0
    if not used.any():
        return lengths
    np.minimum(lengths, max_len, out=lengths, where=used)
    # Kraft sum in units of 2^-max_len to stay in exact integer arithmetic.
    unit = 1 << max_len
    kraft = int((1 << (max_len - lengths[used])).sum())
    if kraft > unit:
        # Lengthen least-frequent symbols first (cheapest in expected bits).
        order = np.flatnonzero(used)
        order = order[np.argsort(freqs[order], kind="stable")]
        while kraft > unit:
            progressed = False
            for s in order:
                if lengths[s] < max_len:
                    kraft -= 1 << (max_len - lengths[s] - 1)
                    lengths[s] += 1
                    progressed = True
                    if kraft <= unit:
                        break
            if not progressed:  # pragma: no cover - cannot happen for n<=2^max_len
                raise ValueError("cannot satisfy code length limit")
    if kraft < unit:
        # Use remaining slack on the most frequent symbols.
        order = np.flatnonzero(used)
        order = order[np.argsort(-freqs[order], kind="stable")]
        improved = True
        while improved:
            improved = False
            for s in order:
                if lengths[s] > 1:
                    gain = 1 << (max_len - lengths[s])
                    if kraft + gain <= unit:
                        kraft += gain
                        lengths[s] -= 1
                        improved = True
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes: symbols sorted by (length, symbol index)."""
    codes = np.zeros(len(lengths), dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if len(used) == 0:
        return codes
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= ln - prev_len
        codes[s] = code
        code += 1
        prev_len = ln
    return codes


class HuffmanCode:
    """A canonical Huffman codebook over the alphabet ``0..alphabet_size-1``.

    Build one with :meth:`from_frequencies`, then :meth:`encode` symbol
    arrays into a :class:`BitWriter` and :meth:`decode` them back from bytes.
    """

    def __init__(self, lengths: np.ndarray) -> None:
        self.lengths = np.asarray(lengths, dtype=np.uint8)
        if self.lengths.size and int(self.lengths.max()) > MAX_CODE_LENGTH:
            raise ValueError("code length exceeds MAX_CODE_LENGTH")
        self.codes = _canonical_codes(self.lengths.astype(np.int64))
        self._decode_sym: list[int] | None = None
        self._decode_len: list[int] | None = None
        self._decode_sym_np: np.ndarray | None = None
        self._decode_len_np: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_frequencies(cls, freqs: np.ndarray, *, max_len: int = MAX_CODE_LENGTH) -> "HuffmanCode":
        """Build an (almost) optimal length-limited code from symbol counts."""
        freqs = np.asarray(freqs, dtype=np.int64)
        if (freqs < 0).any():
            raise ValueError("frequencies must be non-negative")
        raw = _huffman_lengths(freqs)
        limited = _limit_lengths(raw, freqs, max_len)
        return cls(limited)

    @classmethod
    def from_symbols(cls, symbols: np.ndarray, alphabet_size: int | None = None) -> "HuffmanCode":
        """Build a code from an observed symbol array."""
        symbols = np.asarray(symbols).ravel()
        if alphabet_size is None:
            alphabet_size = int(symbols.max()) + 1 if symbols.size else 1
        freqs = np.bincount(symbols.astype(np.int64), minlength=alphabet_size)
        return cls.from_frequencies(freqs)

    @property
    def alphabet_size(self) -> int:
        return len(self.lengths)

    def expected_bits(self, freqs: np.ndarray) -> int:
        """Total encoded size in bits for the given symbol counts."""
        freqs = np.asarray(freqs, dtype=np.int64)
        return int((freqs * self.lengths[: len(freqs)].astype(np.int64)).sum())

    # ------------------------------------------------------------------ #
    def encode(self, symbols: np.ndarray, writer: BitWriter) -> None:
        """Append the codewords for ``symbols`` to ``writer`` (vectorized)."""
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size == 0:
            return
        lens = self.lengths[symbols]
        if (lens == 0).any():
            bad = symbols[lens == 0][0]
            raise ValueError(f"symbol {bad} has no codeword (zero frequency at build time)")
        writer.write_varwidth(self.codes[symbols].astype(np.uint64), lens)

    def _build_decode_table(self) -> None:
        size = 1 << MAX_CODE_LENGTH
        sym_t = np.zeros(size, dtype=np.int64)
        len_t = np.zeros(size, dtype=np.int32)
        for s in np.flatnonzero(self.lengths):
            ln = int(self.lengths[s])
            start = int(self.codes[s]) << (MAX_CODE_LENGTH - ln)
            count = 1 << (MAX_CODE_LENGTH - ln)
            sym_t[start : start + count] = s
            len_t[start : start + count] = ln
        self._decode_sym_np = sym_t
        self._decode_len_np = len_t
        # Plain lists: element access is ~3x faster than ndarray scalar access.
        self._decode_sym = sym_t.tolist()
        self._decode_len = len_t.tolist()

    def decode(self, data: bytes, n_symbols: int, bit_offset: int = 0) -> tuple[np.ndarray, int]:
        """Decode ``n_symbols`` codewords from ``data`` starting at ``bit_offset``.

        Returns ``(symbols, new_bit_offset)``. Large streams dispatch to the
        batched NumPy kernel (:meth:`decode_vectorized`), small ones to the
        scalar loop (:meth:`decode_scalar`); both produce identical output.
        """
        if n_symbols >= _VECTOR_MIN_SYMBOLS:
            return self.decode_vectorized(data, n_symbols, bit_offset)
        return self.decode_scalar(data, n_symbols, bit_offset)

    def decode_scalar(self, data: bytes, n_symbols: int, bit_offset: int = 0) -> tuple[np.ndarray, int]:
        """Scalar reference decoder (one table lookup per symbol).

        Kept as the differential-testing oracle for the vectorized kernel and
        as the fast path for short streams.
        """
        if self._decode_sym is None:
            self._build_decode_table()
        sym_t = self._decode_sym
        len_t = self._decode_len
        assert sym_t is not None and len_t is not None
        nbits = len(data) * 8
        if n_symbols and bit_offset >= nbits:
            raise EOFError(_EOF_MSG)
        buf = bytes(data) + b"\x00\x00\x00"
        out = [0] * n_symbols
        pos = bit_offset
        for i in range(n_symbols):
            byte = pos >> 3
            w = (((buf[byte] << 16) | (buf[byte + 1] << 8) | buf[byte + 2]) >> (8 - (pos & 7))) & 0xFFFF
            ln = len_t[w]
            if ln == 0 or pos + ln > nbits:
                raise EOFError(_EOF_MSG)
            out[i] = sym_t[w]
            pos += ln
        return np.array(out, dtype=np.int64), pos

    def decode_vectorized(self, data: bytes, n_symbols: int, bit_offset: int = 0) -> tuple[np.ndarray, int]:
        """Batched NumPy decoder (anchor chains + self-synchronization).

        Phases, all vectorized except a short stitch loop:

        1. decode the 16-bit window at *every* bit position of the stream in
           one pass, yielding per-position ``(symbol, length)`` arrays;
        2. equal-length codebooks finish immediately (codeword boundaries
           are ``offset + k * L``);
        3. otherwise walk one decode chain per anchor (anchors every
           ``~_ANCHOR_SYMS`` codewords) in lockstep, recording the visited
           bit positions — chains started mid-codeword resynchronize with
           the true chain within a few symbols;
        4. stitch: follow the true chain at anchor granularity, copying each
           chain's already-decoded span; single-symbol scalar steps patch
           the rare sync gaps, and persistent sync failure falls back to the
           scalar loop for the remainder (correct for adversarial streams).
        """
        if n_symbols == 0:
            return np.zeros(0, dtype=np.int64), bit_offset
        if self._decode_sym_np is None:
            self._build_decode_table()
        sym_np = self._decode_sym_np
        len_np = self._decode_len_np
        assert sym_np is not None and len_np is not None

        data = bytes(data)
        nbits = len(data) * 8
        used = self.lengths[self.lengths > 0]
        if used.size == 0 or bit_offset >= nbits:
            raise EOFError(_EOF_MSG)
        min_len = int(used.min())
        max_len_used = int(used.max())

        # n symbols span at most 16n bits; never touch (or allocate) more.
        nb = min(nbits, bit_offset + MAX_CODE_LENGTH * n_symbols)
        pad = _MAX_STEPS * MAX_CODE_LENGTH + MAX_CODE_LENGTH
        if nb + pad >= 2**31:  # keep int32 position arithmetic exact
            return self.decode_scalar(data, n_symbols, bit_offset)
        nbytes_eff = (nb + 7) // 8
        buf = np.frombuffer(data[:nbytes_eff] + b"\x00\x00\x00", dtype=np.uint8).astype(np.int32)

        def window_at(pos: np.ndarray) -> np.ndarray:
            byte = pos >> 3
            return (((buf[byte] << 16) | (buf[byte + 1] << 8) | buf[byte + 2])
                    >> (8 - (pos & 7))) & 0xFFFF

        # --- equal-length fast path (covers 1-symbol codebooks) --------- #
        if min_len == max_len_used:
            step = min_len
            end = bit_offset + step * n_symbols
            if end > nbits:
                raise EOFError(_EOF_MSG)
            pos = bit_offset + step * np.arange(n_symbols, dtype=np.int32)
            w = window_at(pos)
            if (len_np[w] == 0).any():
                raise EOFError(_EOF_MSG)
            return sym_np[w], end

        # --- per-bit-position window decode ------------------------------ #
        # The 24-bit word starting at each byte, broadcast over the 8 bit
        # phases, yields the 16-bit decode window at every bit position
        # without any gather.
        w24 = (buf[:-2] << 16) | (buf[1:-1] << 8) | buf[2:]
        shifts = np.arange(8, 0, -1, dtype=np.int32)
        w_all = ((w24[:, None] >> shifts[None, :]) & 0xFFFF).ravel()[:nb]
        # Padded variants: walking chains may briefly run past the stream
        # end; invalid/pad positions advance 1 bit and flag length 0.
        len_ext = np.zeros(nb + pad, dtype=np.int32)
        np.take(len_np, w_all, out=len_ext[:nb])  # 0 marks an invalid prefix
        sym_ext = np.zeros(nb + pad, dtype=np.int64)
        np.take(sym_np, w_all, out=sym_ext[:nb])
        len_walk = np.maximum(len_ext, 1)

        # --- anchor chain walk (positions only) -------------------------- #
        avg_len = max(min_len, min(MAX_CODE_LENGTH, (nb - bit_offset) / n_symbols))
        gap = max(min_len, int(round(_ANCHOR_SYMS * avg_len)))
        n_chains = max(1, -(-(nb - bit_offset) // gap))
        anchors = (bit_offset + gap * np.arange(n_chains, dtype=np.int64)).astype(np.int32)
        target = np.minimum(anchors + np.int32(gap + _SLACK_BITS), np.int32(nb))

        pos_recs = [anchors]
        cur = anchors
        steps = 0
        while True:
            cur = cur + len_walk[cur]
            pos_recs.append(cur)
            steps += 1
            if steps >= _MAX_STEPS:
                break
            if steps % 8 == 0 and (cur >= target).all():
                break
        n_steps = steps
        pos_mat = np.ascontiguousarray(np.array(pos_recs).T)  # (n_chains, n_steps+1)

        # --- stitch along the true chain --------------------------------- #
        # Record only the codeword start positions here; symbols are
        # gathered and the stream validated in one batched pass afterwards.
        # Every recorded position lies on the true decode chain, so on any
        # validation failure the scalar oracle (re-run from the start) is
        # guaranteed to raise EOFError at the exact failing symbol.
        pos_all = np.empty(n_symbols, dtype=np.int32)
        count = 0
        p = bit_offset
        n_scalar_steps = 0
        while count < n_symbols:
            if p >= nb:
                raise EOFError(_EOF_MSG)
            k = (p - bit_offset) // gap
            if k >= n_chains:
                k = n_chains - 1
            row = pos_mat[k]
            j = int(row.searchsorted(p))
            if j < n_steps and row[j] == p:
                take = min(n_steps - j, n_symbols - count)
                pos_all[count : count + take] = row[j : j + take]
                count += take
                p = int(row[j + take])
            else:
                # Sync gap: the chain covering this region has not merged
                # with the true chain yet. Step one symbol.
                ln_s = int(len_ext[p])
                if ln_s == 0:
                    return self.decode_scalar(data, n_symbols, bit_offset)
                pos_all[count] = p
                count += 1
                p += ln_s
                n_scalar_steps += 1
                if n_scalar_steps > 4096 and n_scalar_steps * 4 > count:
                    # Pathological stream that refuses to resynchronize:
                    # finish with the scalar loop rather than limping along.
                    prefix = pos_all[:count]
                    if count and int(len_ext[prefix].min()) == 0:
                        return self.decode_scalar(data, n_symbols, bit_offset)
                    rest, p = self.decode_scalar(data, n_symbols - count, p)
                    out = np.empty(n_symbols, dtype=np.int64)
                    out[:count] = sym_ext[prefix]
                    out[count:] = rest
                    return out, p

        ln_all = len_ext[pos_all]
        if int(ln_all.min()) == 0 or p > nbits:
            # Invalid window or overrun on the true chain: the oracle raises
            # EOFError at the exact failing symbol.
            return self.decode_scalar(data, n_symbols, bit_offset)
        return sym_ext[pos_all], p

    # ------------------------------------------------------------------ #
    def serialize(self) -> bytes:
        """Compact codebook serialization: (count, delta-coded symbols, nibbled lengths)."""
        used = np.flatnonzero(self.lengths)
        out = bytearray()
        encode_uvarint(len(used), out)
        encode_uvarint(self.alphabet_size, out)
        if len(used) == 0:
            return bytes(out)
        deltas = np.diff(used, prepend=0)
        out += encode_uvarint_array(zigzag_encode(deltas))
        lens = self.lengths[used].astype(np.uint8) - 1  # 1..16 -> 0..15
        if len(lens) % 2:
            lens = np.concatenate([lens, np.zeros(1, dtype=np.uint8)])
        nibbles = (lens[0::2] << 4) | lens[1::2]
        out += nibbles.tobytes()
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, pos: int = 0) -> tuple["HuffmanCode", int]:
        """Inverse of :meth:`serialize`; returns ``(code, new_pos)``."""
        n_used, pos = decode_uvarint(data, pos)
        alphabet, pos = decode_uvarint(data, pos)
        lengths = np.zeros(alphabet, dtype=np.uint8)
        if n_used == 0:
            return cls(lengths), pos
        deltas, pos = decode_uvarint_array(data, n_used, pos)
        symbols = np.cumsum(zigzag_decode(deltas))
        n_nib_bytes = (n_used + 1) // 2
        nibbles = np.frombuffer(data[pos : pos + n_nib_bytes], dtype=np.uint8)
        if len(nibbles) != n_nib_bytes:
            raise EOFError("truncated Huffman table")
        pos += n_nib_bytes
        lens = np.empty(n_nib_bytes * 2, dtype=np.uint8)
        lens[0::2] = nibbles >> 4
        lens[1::2] = nibbles & 0x0F
        lengths[symbols] = lens[:n_used] + 1
        return cls(lengths), pos
