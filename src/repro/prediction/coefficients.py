"""Mask-aware fitting coefficients — the paper's Theorem 1.

CliZ predicts a point from up to four references at offsets ``-3h, -h, +h,
+3h`` along one dimension. When references are invalid (masked out, or out
of bounds at array edges — the engine treats both identically), the
coefficients of the remaining valid references are adjusted so the
prediction stays an optimal polynomial fit of the valid points.

The paper states this as Formula (2):

    p_i = prod_j ( v_j * M[i, j] + (1 - v_j) * B[i, j] )

with the matrices M, B below. The resulting coefficients are exactly the
Lagrange interpolation basis evaluated at the target (position 0) over the
valid node subset of {-3, -1, +1, +3} — a property the test suite checks for
all 16 validity patterns.

Tables are precomputed for the 16 cubic validity codes
(``code = v0*8 + v1*4 + v2*2 + v3``) and the 4 linear codes
(``code = v_left*2 + v_right``), so the engine's hot path is a single
fancy-indexed gather.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MATRIX_M",
    "MATRIX_B",
    "CUBIC_TABLE",
    "LINEAR_TABLE",
    "cubic_coefficients",
    "linear_coefficients",
    "CUBIC_OFFSETS",
    "LINEAR_OFFSETS",
]

#: Reference node positions (in units of the interpolation stride h).
CUBIC_OFFSETS = np.array([-3, -1, 1, 3], dtype=np.int64)
LINEAR_OFFSETS = np.array([-1, 1], dtype=np.int64)

#: Paper Theorem 1, matrix M (coefficients when the j-th reference is valid).
MATRIX_M = np.array(
    [
        [1.0, -0.5, 0.25, 0.5],
        [1.5, 1.0, 0.5, 0.75],
        [0.75, 0.5, 1.0, 1.5],
        [0.5, 0.25, -0.5, 1.0],
    ]
)

#: Paper Theorem 1, matrix B (factors when the j-th reference is invalid).
MATRIX_B = np.array(
    [
        [0.0, 1.0, 1.0, 1.0],
        [1.0, 0.0, 1.0, 1.0],
        [1.0, 1.0, 0.0, 1.0],
        [1.0, 1.0, 1.0, 0.0],
    ]
)


def cubic_coefficients(validity: np.ndarray) -> np.ndarray:
    """Formula (2): coefficients for one validity vector ``(v0, v1, v2, v3)``."""
    v = np.asarray(validity, dtype=np.float64)
    if v.shape != (4,):
        raise ValueError("validity must have exactly 4 entries")
    factors = v[None, :] * MATRIX_M + (1.0 - v[None, :]) * MATRIX_B
    return factors.prod(axis=1)


def linear_coefficients(validity: np.ndarray) -> np.ndarray:
    """Linear-fitting analogue of Theorem 1 for references at ``-h, +h``.

    Both valid -> average (the classic linear fit at the midpoint); one valid
    -> constant fit (copy); none valid -> predict zero.
    """
    v = np.asarray(validity, dtype=np.float64)
    if v.shape != (2,):
        raise ValueError("validity must have exactly 2 entries")
    both = v[0] * v[1]
    return np.array([
        0.5 * both + v[0] * (1.0 - v[1]),
        0.5 * both + v[1] * (1.0 - v[0]),
    ])


def _build_table(n_refs: int, fn) -> np.ndarray:
    table = np.zeros((1 << n_refs, n_refs))
    for code in range(1 << n_refs):
        validity = [(code >> (n_refs - 1 - j)) & 1 for j in range(n_refs)]
        table[code] = fn(np.array(validity, dtype=np.float64))
    return table


#: Coefficients for all 16 cubic validity codes; ``CUBIC_TABLE[0b1111]`` is
#: the classic (-1/16, 9/16, 9/16, -1/16) stencil of Formula (1).
CUBIC_TABLE = _build_table(4, cubic_coefficients)

#: Coefficients for the 4 linear validity codes.
LINEAR_TABLE = _build_table(2, linear_coefficients)
