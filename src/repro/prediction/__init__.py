"""Data predictors: mask-aware spline interpolation (SZ3/CliZ) and Lorenzo."""

from repro.prediction.coefficients import (
    CUBIC_TABLE,
    LINEAR_TABLE,
    MATRIX_B,
    MATRIX_M,
    cubic_coefficients,
    linear_coefficients,
)
from repro.prediction.interpolation import (
    InterpResult,
    InterpSpec,
    interp_compress,
    interp_compress_reference,
    interp_decompress,
    interpolation_steps,
    max_level,
)
from repro.prediction.lorenzo import lorenzo_compress, lorenzo_decompress, lorenzo_prediction_errors

__all__ = [
    "CUBIC_TABLE",
    "LINEAR_TABLE",
    "MATRIX_M",
    "MATRIX_B",
    "cubic_coefficients",
    "linear_coefficients",
    "InterpSpec",
    "InterpResult",
    "interp_compress",
    "interp_compress_reference",
    "interp_decompress",
    "interpolation_steps",
    "max_level",
    "lorenzo_compress",
    "lorenzo_decompress",
    "lorenzo_prediction_errors",
]
