"""First-order Lorenzo predictor (SZ2 heritage).

Two roles in this repository:

* :func:`lorenzo_prediction_errors` — vectorized Lorenzo residuals on the
  *original* data, used for smoothness analysis (e.g. ranking dimension
  orders cheaply) and in tests.
* :func:`lorenzo_compress` / :func:`lorenzo_decompress` — an exact
  error-bounded Lorenzo compressor that predicts from *reconstructed*
  neighbours, like SZ2. The data dependency makes this inherently
  sequential, so it is implemented as a straightforward scalar loop and
  guarded to small arrays; it serves as an independent reference compressor
  for cross-checking the interpolation engine and as the SZ2-style ablation
  point, not as a production path.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.quantization.linear import DEFAULT_RADIUS, UNPREDICTABLE, LinearQuantizer

__all__ = ["lorenzo_prediction_errors", "lorenzo_compress", "lorenzo_decompress"]

_MAX_SEQUENTIAL_POINTS = 200_000


def _corner_terms(ndim: int) -> list[tuple[tuple[int, ...], float]]:
    """Lorenzo stencil: offsets over the unit hypercube corners (minus self).

    pred(x) = sum over non-empty subsets S of dims of (-1)^(|S|+1) * v[x - e_S].
    """
    terms = []
    for bits in itertools.product((0, 1), repeat=ndim):
        k = sum(bits)
        if k == 0:
            continue
        sign = 1.0 if k % 2 == 1 else -1.0
        terms.append((bits, sign))
    return terms


def lorenzo_prediction_errors(data: np.ndarray) -> np.ndarray:
    """Vectorized Lorenzo residuals of the interior of ``data`` (original values)."""
    data = np.asarray(data, dtype=np.float64)
    ndim = data.ndim
    core = data[(slice(1, None),) * ndim]
    pred = np.zeros_like(core)
    for bits, sign in _corner_terms(ndim):
        idx = tuple(slice(1 - b, data.shape[i] - b) for i, b in enumerate(bits))
        pred += sign * data[idx]
    return core - pred


def lorenzo_compress(data: np.ndarray, eb: float,
                     radius: int = DEFAULT_RADIUS) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Error-bounded Lorenzo compression (reference implementation).

    Returns ``(codes, unpredictable, reconstructed)`` with the same stream
    conventions as the interpolation engine. Raises for arrays larger than
    200k points: the scalar loop is a correctness reference, not a fast path.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.size > _MAX_SEQUENTIAL_POINTS:
        raise ValueError(
            f"lorenzo_compress is a sequential reference implementation; "
            f"{data.size} points exceeds the {_MAX_SEQUENTIAL_POINTS} guard"
        )
    quant = LinearQuantizer(eb, radius=radius)
    rec = np.zeros_like(data)
    terms = _corner_terms(data.ndim)
    codes = np.empty(data.size, dtype=np.int64)
    unpred: list[float] = []
    flat_idx = 0
    for idx in np.ndindex(*data.shape):
        pred = 0.0
        for bits, sign in terms:
            nb = tuple(i - b for i, b in zip(idx, bits))
            if any(c < 0 for c in nb):
                continue
            pred += sign * rec[nb]
        c, r = quant.quantize(np.array([data[idx]]), np.array([pred]))
        codes[flat_idx] = c[0]
        rec[idx] = r[0]
        if c[0] == UNPREDICTABLE:
            unpred.append(float(data[idx]))
        flat_idx += 1
    return codes, np.array(unpred, dtype=np.float64), rec


def lorenzo_decompress(shape: tuple[int, ...], eb: float, codes: np.ndarray,
                       unpredictable: np.ndarray,
                       radius: int = DEFAULT_RADIUS) -> np.ndarray:
    """Inverse of :func:`lorenzo_compress`."""
    shape = tuple(shape)
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size != int(np.prod(shape)):
        raise ValueError("code stream length does not match shape")
    rec = np.zeros(shape, dtype=np.float64)
    terms = _corner_terms(len(shape))
    width = 2.0 * eb
    upos = 0
    flat_idx = 0
    for idx in np.ndindex(*shape):
        pred = 0.0
        for bits, sign in terms:
            nb = tuple(i - b for i, b in zip(idx, bits))
            if any(c < 0 for c in nb):
                continue
            pred += sign * rec[nb]
        c = codes[flat_idx]
        if c == UNPREDICTABLE:
            rec[idx] = unpredictable[upos]
            upos += 1
        else:
            rec[idx] = pred + (int(c) - radius) * width
        flat_idx += 1
    return rec
