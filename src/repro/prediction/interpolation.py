"""SZ3-style multigrid spline-interpolation predictor + quantizer.

This engine is the shared substrate of the SZ3 baseline, QoZ, and CliZ:

* Compression proceeds level by level on a dyadic grid hierarchy: a single
  anchor (the origin, predicted as 0), then for strides ``2^L, ..., 2``
  each level fills the half-stride grid by predicting along one dimension at
  a time — the classic dynamic spline interpolation of SZ3 [Zhao et al.,
  ICDE'21], with the paper's Formula (1)/(2) stencils.
* The *dimension order* within a level is configurable (CliZ's dimension
  permutation); *fusion* is performed by the caller as a reshape before
  calling in here.
* Every reference's validity combines in-bounds checks with the optional
  mask-map, feeding the Theorem-1 coefficient tables — so boundary fallback
  (SZ3's hard-coded degradation to lower-degree fits) and mask-aware
  prediction (CliZ §VI-B) are one mechanism.
* All per-(level, dim) passes are fully vectorized: every point of a pass is
  predicted from the already-reconstructed coarser grid, so there is no
  sequential dependency inside a pass (this is what makes a pure-NumPy SZ3
  practical).

The produced code stream (valid positions only, deterministic traversal
order) plus the unpredictable-value list fully determine the reconstruction;
:func:`interp_decompress` replays the identical traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.prediction.coefficients import (
    CUBIC_OFFSETS,
    CUBIC_TABLE,
    LINEAR_OFFSETS,
    LINEAR_TABLE,
)
from repro.quantization.linear import DEFAULT_RADIUS, UNPREDICTABLE, LinearQuantizer

__all__ = [
    "InterpSpec",
    "InterpResult",
    "interp_compress",
    "interp_compress_reference",
    "interp_decompress",
    "interpolation_steps",
    "max_level",
    "traversal_indices",
]

_FIT_LINEAR = 0
_FIT_CUBIC = 1
_WEIGHTS4 = np.array([8, 4, 2, 1], dtype=np.int64)
_WEIGHTS2 = np.array([2, 1], dtype=np.int64)


@dataclass(frozen=True)
class InterpSpec:
    """Configuration of one interpolation compression pass.

    Attributes
    ----------
    order:
        Dimension processing order within each level (a permutation of
        ``range(ndim)``). Later dimensions in the order receive more
        predictions (the paper's ``2^{i-1}/(2^n - 1)`` fractions), so the
        smoothest dimension should come last.
    fitting:
        ``'linear'``, ``'cubic'``, or ``'auto'`` (choose per (level, dim)
        step by observed squared error — the QoZ behaviour; choices are
        recorded in :attr:`InterpResult.fit_choices` and must be passed back
        to :func:`interp_decompress`).
    level_eb_factors:
        Optional per-level error-bound scaling factors (coarsest level
        first), each in (0, 1]. Coarse-level points are referenced by many
        later predictions, so tightening them (QoZ) improves overall quality
        at slight rate cost. Missing entries default to 1.0.
    radius:
        Quantizer radius (alphabet is ``2 * radius`` codes).
    """

    order: tuple[int, ...]
    fitting: str = "cubic"
    level_eb_factors: tuple[float, ...] = field(default_factory=tuple)
    radius: int = DEFAULT_RADIUS

    def __post_init__(self) -> None:
        if self.fitting not in ("linear", "cubic", "auto"):
            raise ValueError(f"unknown fitting {self.fitting!r}")
        if sorted(self.order) != list(range(len(self.order))):
            raise ValueError(f"order {self.order} is not a permutation")
        for f in self.level_eb_factors:
            if not (0.0 < f <= 1.0):
                raise ValueError("level_eb_factors must lie in (0, 1]")


@dataclass
class InterpResult:
    """Output of :func:`interp_compress`."""

    codes: np.ndarray  # int64 stream over valid points, traversal order
    unpredictable: np.ndarray  # float64 exact values for code==0 entries
    reconstructed: np.ndarray  # error-bounded reconstruction (masked -> 0.0)
    fit_choices: list[int]  # per-step fit used (only populated for 'auto')


def max_level(shape: tuple[int, ...]) -> int:
    """Number of dyadic levels needed to cover ``shape`` from a single anchor."""
    n = max(shape)
    if n <= 1:
        return 0
    return int(np.ceil(np.log2(n)))


def interpolation_steps(shape: tuple[int, ...], order: tuple[int, ...]):
    """Yield the deterministic (stride, fine_stride, dim_position) traversal.

    Each yielded tuple is ``(level_index, coarse_stride, fine_stride, k)``
    where ``k`` indexes into ``order``. Steps with no target points are
    still yielded (both sides skip them identically).
    """
    levels = max_level(shape)
    for level_idx, level in enumerate(range(levels, 0, -1)):
        s = 1 << level
        h = s >> 1
        for k in range(len(order)):
            yield level_idx, s, h, k


def _step_geometry(shape, order, s, h, k):
    """Slices and target indices for one (level, dim) pass.

    Dimensions earlier in ``order`` were already refined this level (stride
    ``h``); later ones are still at stride ``s``; the active dimension ``d``
    takes targets at odd multiples of ``h``.
    """
    d = order[k]
    slices = [None] * len(shape)
    for j, dim in enumerate(order):
        if j < k:
            slices[dim] = slice(None, None, h)
        elif j > k:
            slices[dim] = slice(None, None, s)
    slices[d] = slice(None)
    targets = np.arange(h, shape[d], s)
    return d, tuple(slices), targets


def _predict(rec, valid, axis, slices, targets, h, fit):
    """Predict all targets of one (level, dim) pass from reconstructed refs.

    ``rec[slices]`` is the stride-restricted view with the active dimension
    left whole at ``axis``; ``targets`` are indices along that axis and
    ``h`` is the fine stride (reference offsets are ``offsets * h``).
    Returns the prediction array shaped like the target selection.
    """
    offsets = CUBIC_OFFSETS if fit == _FIT_CUBIC else LINEAR_OFFSETS
    table = CUBIC_TABLE if fit == _FIT_CUBIC else LINEAR_TABLE
    weights = _WEIGHTS4 if fit == _FIT_CUBIC else _WEIGHTS2
    view = rec[slices]
    n = view.shape[axis]
    ref_idx = targets[:, None] + offsets[None, :] * h
    inb = (ref_idx >= 0) & (ref_idx < n)
    ref_clip = np.clip(ref_idx, 0, n - 1)
    take = (slice(None),) * axis + (ref_clip,)
    refs = view[take]  # shape: pre + (T, R) + post
    # Broadcast the (T, R) in-bounds matrix onto the gathered shape.
    expand = (1,) * axis + ref_idx.shape + (1,) * (view.ndim - axis - 1)
    if valid is None:
        vrefs = np.broadcast_to(inb.reshape(expand), refs.shape)
    else:
        vrefs = valid[slices][take] & inb.reshape(expand)
    wshape = (1,) * axis + (1, len(weights)) + (1,) * (view.ndim - axis - 1)
    codes = (vrefs * weights.reshape(wshape)).sum(axis=axis + 1)
    coeffs = np.moveaxis(table[codes], -1, axis + 1)
    return (refs * coeffs).sum(axis=axis + 1)


def _interior_rows(n: int, h: int, offsets: np.ndarray,
                   n_targets: int) -> tuple[int, int]:
    """Target-row range ``[i0, i1)`` whose references are all in bounds.

    Targets sit at ``h + 2*h*i`` along an axis of length ``n``; a row is
    *interior* when every reference offset ``o*h`` (``o`` in ``offsets``)
    stays inside ``[0, n)``. Outside rows fall back to the generic
    mask-aware predictor; rows inside use the full-validity stencil with
    pure strided views (no gather, no per-point coefficient lookup).
    """
    o_min = int(offsets[0])
    o_max = int(offsets[-1])
    # first row with h + 2*h*i + o_min*h >= 0
    i0 = max(0, -((1 + o_min) // 2))
    # last row with h + 2*h*i + o_max*h <= n - 1
    num = n - 1 - h * (1 + o_max)
    i1 = num // (2 * h) + 1 if num >= 0 else 0
    i0 = min(i0, n_targets)
    i1 = max(i0, min(i1, n_targets))
    return i0, i1


def _edge_row(view, axis, t, h, offsets, table, weights, n, out_row) -> None:
    """One boundary target row of an unmasked pass, scalar-stencil form.

    Without a mask a target row's reference validity depends only on its
    position along ``axis``, so the whole row shares one stencil code —
    the reference kernel's clipped gather + per-point ``table[codes]``
    lookup collapses to ``R`` strided multiply-adds with the same clipped
    sources and the same left-to-right accumulation (zero-coefficient
    terms included, preserving NaN/inf propagation).
    """
    code = 0
    for j, o in enumerate(offsets):
        p = t + int(o) * h
        if 0 <= p < n:
            code += int(weights[j])
    head = (slice(None),) * axis
    for j, (o, c) in enumerate(zip(offsets, table[code])):
        p = min(max(t + int(o) * h, 0), n - 1)
        src = view[head + (slice(p, p + 1),)]  # length-1 slice: stays an array
        if j == 0:
            np.multiply(src, c, out=out_row)
        else:
            out_row += src * c


def _predict_fast(rec, axis, slices, targets, h, fit):
    """Unmasked fast path of :func:`_predict` — bit-identical predictions.

    Interior target rows (all references in bounds) are computed from
    strided views with the scalar full-validity coefficients: the same
    multiplies and left-to-right additions as the reference kernel's
    ``(refs * coeffs).sum(axis)`` (NumPy reduces a length-2/4 axis
    sequentially), without materializing the ``(T, R)`` gather or the
    per-point coefficient table rows. Edge rows (at most three per pass)
    take the same shape via :func:`_edge_row`'s per-row scalar stencil.
    """
    offsets = CUBIC_OFFSETS if fit == _FIT_CUBIC else LINEAR_OFFSETS
    table = CUBIC_TABLE if fit == _FIT_CUBIC else LINEAR_TABLE
    weights = _WEIGHTS4 if fit == _FIT_CUBIC else _WEIGHTS2
    view = rec[slices]
    n = view.shape[axis]
    n_targets = targets.size
    i0, i1 = _interior_rows(n, h, offsets, n_targets)
    if i1 - i0 < 4:  # tiny pass: the view arithmetic is all overhead
        return _predict(rec, None, axis, slices, targets, h, fit)
    coeffs = table[(1 << len(offsets)) - 1]
    block_shape = list(view.shape)
    block_shape[axis] = n_targets
    pred = np.empty(tuple(block_shape), dtype=np.float64)
    head = (slice(None),) * axis
    t0 = int(targets[i0])
    t1 = int(targets[i1 - 1])
    pred_int = pred[head + (slice(i0, i1),)]
    for j, (o, c) in enumerate(zip(offsets, coeffs)):
        src = view[head + (slice(t0 + int(o) * h, t1 + int(o) * h + 1, 2 * h),)]
        if j == 0:
            np.multiply(src, c, out=pred_int)
        else:
            pred_int += src * c
    for i in list(range(i0)) + list(range(i1, n_targets)):
        _edge_row(view, axis, int(targets[i]), h, offsets, table, weights, n,
                  pred[head + (slice(i, i + 1),)])
    return pred


def _level_quantizer(spec: InterpSpec, eb: float, level_idx: int) -> LinearQuantizer:
    factor = 1.0
    if level_idx < len(spec.level_eb_factors):
        factor = spec.level_eb_factors[level_idx]
    return LinearQuantizer(eb * factor, radius=spec.radius)


def interp_compress(data: np.ndarray, eb: float, spec: InterpSpec,
                    mask: np.ndarray | None = None) -> InterpResult:
    """Compress ``data`` to a quantization-code stream under bound ``eb``.

    ``mask`` marks valid points (True); invalid points are excluded from the
    stream, never used as references, and reconstructed as 0.0 (callers
    restore fill values).

    Unmasked data takes the fused predict+quantize fast path (strided-view
    predictions, in-place quantization into one preallocated stream) which
    is bit-identical to :func:`interp_compress_reference`, the retained
    two-pass implementation that also serves as the differential-testing
    oracle. Masked data always uses the reference path.
    """
    if mask is None:
        return _interp_compress_fused(data, eb, spec)
    return interp_compress_reference(data, eb, spec, mask=mask)


def _interp_compress_fused(data: np.ndarray, eb: float,
                           spec: InterpSpec) -> InterpResult:
    """Fused predict+quantize pass (unmasked data only).

    One code stream is preallocated up front (the dyadic traversal visits
    every grid point exactly once, so its length is ``data.size``); each
    (level, dim) pass predicts via :func:`_predict_fast` and quantizes
    straight into its stream segment via
    :meth:`~repro.quantization.linear.LinearQuantizer.quantize_into` —
    no per-step code/residual arrays, no final concatenate.
    """
    data = np.asarray(data, dtype=np.float64)
    shape = data.shape
    if len(spec.order) != data.ndim:
        raise ValueError(f"spec.order has {len(spec.order)} dims, data has {data.ndim}")
    rec = np.zeros_like(data)
    codes_all = np.empty(data.size, dtype=np.int64)
    unpred_parts: list[np.ndarray] = []
    fit_choices: list[int] = []
    auto = spec.fitting == "auto"
    global_fit = _FIT_CUBIC if spec.fitting == "cubic" else _FIT_LINEAR

    # --- anchor: origin, predicted as zero -------------------------------- #
    origin = (0,) * data.ndim
    q0 = _level_quantizer(spec, eb, 0)
    codes, recv = q0.quantize(np.array([data[origin]]), np.zeros(1))
    rec[origin] = recv[0]
    codes_all[0] = codes[0]
    off = 1
    if codes[0] == UNPREDICTABLE:
        unpred_parts.append(np.array([data[origin]]))

    # --- levels ------------------------------------------------------------ #
    for level_idx, s, h, k in interpolation_steps(shape, spec.order):
        d, slices, targets = _step_geometry(shape, spec.order, s, h, k)
        if targets.size == 0:
            continue
        quant = _level_quantizer(spec, eb, level_idx)
        axis = d
        # targets is arange(h, shape[d], 2h): a basic slice, so the target
        # values and the reconstruction destination are zero-copy views.
        tslice = (slice(None),) * axis + (
            slice(int(targets[0]), int(targets[-1]) + 1, 2 * h),)
        tvals = data[slices][tslice]

        if auto:
            pred_lin = _predict_fast(rec, axis, slices, targets, h, _FIT_LINEAR)
            pred_cub = _predict_fast(rec, axis, slices, targets, h, _FIT_CUBIC)
            err_lin = np.abs(tvals - pred_lin).sum()
            err_cub = np.abs(tvals - pred_cub).sum()
            fit = _FIT_CUBIC if err_cub <= err_lin else _FIT_LINEAR
            fit_choices.append(fit)
            pred = pred_cub if fit == _FIT_CUBIC else pred_lin
        else:
            pred = _predict_fast(rec, axis, slices, targets, h, global_fit)

        codeseg = codes_all[off : off + pred.size].reshape(pred.shape)
        recv, ok = quant.quantize_into(tvals, pred, codeseg)
        rec[slices][tslice] = recv
        off += pred.size
        if not ok.all():
            unpred_parts.append(tvals[~ok])

    if off != codes_all.size:  # pragma: no cover - traversal covers the grid
        raise AssertionError(
            f"traversal covered {off} of {codes_all.size} points")
    unpred_all = (
        np.concatenate(unpred_parts) if unpred_parts else np.zeros(0, dtype=np.float64)
    )
    return InterpResult(codes_all, unpred_all, rec, fit_choices)


def interp_compress_reference(data: np.ndarray, eb: float, spec: InterpSpec,
                              mask: np.ndarray | None = None) -> InterpResult:
    """Two-pass reference implementation (and masked-data path).

    Kept as the differential-testing oracle for the fused fast path,
    mirroring the Huffman scalar-decode oracle: simple, obviously-correct
    full-size intermediates, identical output.
    """
    data = np.asarray(data, dtype=np.float64)
    shape = data.shape
    if len(spec.order) != data.ndim:
        raise ValueError(f"spec.order has {len(spec.order)} dims, data has {data.ndim}")
    rec = np.zeros_like(data)
    valid = mask.astype(bool) if mask is not None else None

    code_parts: list[np.ndarray] = []
    unpred_parts: list[np.ndarray] = []
    fit_choices: list[int] = []
    auto = spec.fitting == "auto"
    global_fit = _FIT_CUBIC if spec.fitting == "cubic" else _FIT_LINEAR

    # --- anchor: origin, predicted as zero -------------------------------- #
    origin = (0,) * data.ndim
    q0 = _level_quantizer(spec, eb, 0)
    anchor_valid = valid is None or bool(valid[origin])
    if anchor_valid:
        codes, recv = q0.quantize(np.array([data[origin]]), np.zeros(1))
        rec[origin] = recv[0]
        code_parts.append(codes)
        if codes[0] == UNPREDICTABLE:
            unpred_parts.append(np.array([data[origin]]))

    # --- levels ------------------------------------------------------------ #
    for level_idx, s, h, k in interpolation_steps(shape, spec.order):
        d, slices, targets = _step_geometry(shape, spec.order, s, h, k)
        if targets.size == 0:
            continue
        quant = _level_quantizer(spec, eb, level_idx)
        view_rec = rec[slices]
        axis = d
        tidx = (slice(None),) * axis + (targets,)
        tvals = data[slices][tidx]
        tmask = valid[slices][tidx] if valid is not None else None

        if auto:
            pred_lin = _predict(rec, valid, axis, slices, targets, h, _FIT_LINEAR)
            pred_cub = _predict(rec, valid, axis, slices, targets, h, _FIT_CUBIC)
            if tmask is not None:
                err_lin = np.abs((tvals - pred_lin))[tmask].sum()
                err_cub = np.abs((tvals - pred_cub))[tmask].sum()
            else:
                err_lin = np.abs(tvals - pred_lin).sum()
                err_cub = np.abs(tvals - pred_cub).sum()
            fit = _FIT_CUBIC if err_cub <= err_lin else _FIT_LINEAR
            fit_choices.append(fit)
            pred = pred_cub if fit == _FIT_CUBIC else pred_lin
        else:
            pred = _predict(rec, valid, axis, slices, targets, h, global_fit)

        codes, recv = quant.quantize(tvals, pred)
        if tmask is not None:
            recv = np.where(tmask, recv, 0.0)
            codes_stream = codes[tmask]
            unpred_sel = (codes == UNPREDICTABLE) & tmask
        else:
            codes_stream = codes.ravel()
            unpred_sel = codes == UNPREDICTABLE
        view_rec[tidx] = recv
        code_parts.append(codes_stream.ravel())
        if unpred_sel.any():
            unpred_parts.append(tvals[unpred_sel].ravel())

    if valid is not None:
        rec[~valid] = 0.0
    codes_all = np.concatenate(code_parts) if code_parts else np.zeros(0, dtype=np.int64)
    unpred_all = (
        np.concatenate(unpred_parts) if unpred_parts else np.zeros(0, dtype=np.float64)
    )
    return InterpResult(codes_all, unpred_all, rec, fit_choices)


def interp_decompress(shape: tuple[int, ...], eb: float, spec: InterpSpec,
                      codes: np.ndarray, unpredictable: np.ndarray,
                      mask: np.ndarray | None = None,
                      fit_choices: list[int] | None = None) -> np.ndarray:
    """Replay the traversal of :func:`interp_compress` and reconstruct.

    All arguments must match the compression call; ``fit_choices`` is
    required when ``spec.fitting == 'auto'``.
    """
    shape = tuple(shape)
    codes = np.asarray(codes, dtype=np.int64)
    unpredictable = np.asarray(unpredictable, dtype=np.float64)
    if len(spec.order) != len(shape):
        raise ValueError("spec.order rank mismatch")
    auto = spec.fitting == "auto"
    if auto and fit_choices is None:
        raise ValueError("fit_choices required for fitting='auto'")
    global_fit = _FIT_CUBIC if spec.fitting == "cubic" else _FIT_LINEAR

    rec = np.zeros(shape, dtype=np.float64)
    valid = mask.astype(bool) if mask is not None else None
    cpos = 0
    upos = 0
    step_i = 0

    def take_codes(n: int) -> np.ndarray:
        nonlocal cpos
        if cpos + n > codes.size:
            raise ValueError("code stream shorter than traversal requires")
        out = codes[cpos : cpos + n]
        cpos += n
        return out

    def take_unpred(n: int) -> np.ndarray:
        nonlocal upos
        if upos + n > unpredictable.size:
            raise ValueError("unpredictable stream exhausted")
        out = unpredictable[upos : upos + n]
        upos += n
        return out

    origin = (0,) * len(shape)
    q0 = _level_quantizer(spec, eb, 0)
    if valid is None or bool(valid[origin]):
        c = take_codes(1)
        if c[0] == UNPREDICTABLE:
            rec[origin] = take_unpred(1)[0]
        else:
            rec[origin] = (int(c[0]) - spec.radius) * 2.0 * q0.error_bound

    for level_idx, s, h, k in interpolation_steps(shape, spec.order):
        d, slices, targets = _step_geometry(shape, spec.order, s, h, k)
        if targets.size == 0:
            continue
        quant = _level_quantizer(spec, eb, level_idx)
        axis = d
        tidx = (slice(None),) * axis + (targets,)
        if auto:
            fit = fit_choices[step_i]
            step_i += 1
        else:
            fit = global_fit
        if valid is None:
            pred = _predict_fast(rec, axis, slices, targets, h, fit)
        else:
            pred = _predict(rec, valid, axis, slices, targets, h, fit)
        tmask = valid[slices][tidx] if valid is not None else None
        if tmask is not None:
            n_valid = int(tmask.sum())
            cstep = take_codes(n_valid)
            full = np.full(pred.shape, spec.radius, dtype=np.int64)
            full[tmask] = cstep
        else:
            full = take_codes(pred.size).reshape(pred.shape)
        recv = pred + (full - spec.radius) * (2.0 * quant.error_bound)
        unp = full == UNPREDICTABLE
        if tmask is not None:
            unp &= tmask
        n_unp = int(unp.sum())
        if n_unp:
            recv[unp] = take_unpred(n_unp)
        if tmask is not None:
            recv = np.where(tmask, recv, 0.0)
        rec[slices][tidx] = recv

    if cpos != codes.size:
        raise ValueError(f"code stream has {codes.size - cpos} unconsumed entries")
    if valid is not None:
        rec[~valid] = 0.0
    return rec


def traversal_indices(shape: tuple[int, ...], order: tuple[int, ...],
                      mask: np.ndarray | None = None) -> np.ndarray:
    """Flat grid index of every code-stream entry, in stream order.

    Lets callers relate stream positions back to grid coordinates (CliZ's
    quantization-bin classification groups stream entries by their
    horizontal location). With a ``mask``, invalid positions are omitted,
    mirroring :func:`interp_compress`.
    """
    shape = tuple(shape)
    strides = np.ones(len(shape), dtype=np.int64)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    mask_flat = mask.ravel() if mask is not None else None
    parts: list[np.ndarray] = []
    if mask is None or bool(mask.ravel()[0]):
        parts.append(np.zeros(1, dtype=np.int64))
    for level_idx, s, h, k in interpolation_steps(shape, order):
        d, slices, targets = _step_geometry(shape, order, s, h, k)
        if targets.size == 0:
            continue
        axes_idx = []
        for dim in range(len(shape)):
            if dim == d:
                axes_idx.append(targets)
            else:
                sl = slices[dim]
                axes_idx.append(np.arange(0, shape[dim], sl.step or 1))
        flat = np.zeros((1,) * len(shape), dtype=np.int64)
        for dim, idx in enumerate(axes_idx):
            reshape = (1,) * dim + (idx.size,) + (1,) * (len(shape) - dim - 1)
            flat = flat + idx.reshape(reshape) * strides[dim]
        flat = flat.ravel()
        if mask_flat is not None:
            flat = flat[mask_flat[flat]]
        parts.append(flat)
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
